// OpenTitan embedded-flash model: address & data scrambling plus per-word
// SECDED ECC (paper Sec. III-B: "embedded flash memory enhanced with Error
// Correcting Code (ECC) and data & address scrambling, for enhanced security
// and reliability").
//
// Scrambling follows the OpenTitan flash-controller scheme in spirit:
// a keyed bijective permutation of the word address inside the bank, and a
// keyed keystream XORed over the data before ECC encoding.  The exact ciphers
// (PRINCE/XEX in silicon) are replaced by a splitmix-based PRF — the security
// property exercised by tests is bijectivity + key sensitivity, not
// cryptographic strength.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "soc/ecc.hpp"

namespace titan::soc {

using sim::Addr;

class ScrambledFlash {
 public:
  /// `size_words`: capacity in 32-bit words (must be a power of two so the
  /// address permutation stays bijective).
  ScrambledFlash(std::uint64_t key, std::uint32_t size_words);

  void program(std::uint32_t word_index, std::uint32_t value);
  [[nodiscard]] EccResult read(std::uint32_t word_index) const;

  /// Flip one stored codeword bit (fault injection for ECC tests).
  void inject_bitflip(std::uint32_t word_index, unsigned bit);

  [[nodiscard]] std::uint32_t size_words() const { return size_words_; }
  [[nodiscard]] std::uint64_t corrected_reads() const { return corrected_; }
  [[nodiscard]] std::uint64_t failed_reads() const { return failed_; }

  /// Exposed for tests: the scrambled physical index a logical word maps to.
  [[nodiscard]] std::uint32_t scramble_address(std::uint32_t word_index) const;

 private:
  [[nodiscard]] std::uint32_t keystream(std::uint32_t word_index) const;

  std::uint64_t key_;
  std::uint32_t size_words_;
  unsigned index_bits_;
  Secded codec_{32};
  std::unordered_map<std::uint32_t, std::uint64_t> cells_;  ///< phys -> codeword
  mutable std::uint64_t corrected_ = 0;
  mutable std::uint64_t failed_ = 0;
};

}  // namespace titan::soc

// Bus fabric model: memory-mapped targets behind a crossbar with per-hop
// latency.
//
// Two fabrics exist in the SoC (paper Sec. III): the host-domain AXI4
// crossbar and OpenTitan's TileLink-UL fabric, joined by a TL<->AXI bridge.
// We model both with the same Crossbar class configured with different hop
// latencies; the bridge is an extra-latency region entry.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/memory.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"
#include "soc/memmap.hpp"

namespace titan::soc {

using sim::Addr;

/// A memory-mapped slave.  `size` is 1, 2, 4, or 8 bytes.
class BusTarget {
 public:
  virtual ~BusTarget() = default;
  virtual std::uint64_t read(Addr addr, unsigned size) = 0;
  virtual void write(Addr addr, unsigned size, std::uint64_t value) = 0;

  /// The plain sim::Memory this target adapts, if it is simple RAM/ROM with
  /// no side effects (null for device targets).  Lets an ISS hoist its
  /// fetch-page probe past the crossbar; functional behaviour is identical
  /// because reads of plain memory have no device semantics.
  [[nodiscard]] virtual sim::Memory* backing_memory() { return nullptr; }
};

/// Adapts a sim::Memory to the bus interface.
class MemoryTarget final : public BusTarget {
 public:
  explicit MemoryTarget(sim::Memory& memory) : memory_(memory) {}

  std::uint64_t read(Addr addr, unsigned size) override {
    switch (size) {
      case 1: return memory_.read8(addr);
      case 2: return memory_.read16(addr);
      case 4: return memory_.read32(addr);
      default: return memory_.read64(addr);
    }
  }

  void write(Addr addr, unsigned size, std::uint64_t value) override {
    switch (size) {
      case 1: memory_.write8(addr, static_cast<std::uint8_t>(value)); break;
      case 2: memory_.write16(addr, static_cast<std::uint16_t>(value)); break;
      case 4: memory_.write32(addr, static_cast<std::uint32_t>(value)); break;
      default: memory_.write64(addr, value); break;
    }
  }

  [[nodiscard]] sim::Memory* backing_memory() override { return &memory_; }

 private:
  sim::Memory& memory_;
};

/// Result of a timed bus access.
struct BusResponse {
  std::uint64_t value = 0;  ///< Read data (zero for writes).
  std::uint32_t latency = 0;  ///< Cycles from issue to completion.
  bool decode_error = false;  ///< No target claimed the address.
};

/// Address-decoding crossbar with per-region access latency.
///
/// `hop_latency` models the fabric traversal (AXI: ~2 cycles, TL-UL inside
/// OpenTitan: ~5 cycles per the paper's scratchpad measurements); each region
/// adds its own device latency on top.
class Crossbar {
 public:
  explicit Crossbar(std::string name, std::uint32_t hop_latency)
      : name_(std::move(name)), hop_latency_(hop_latency) {}

  void map(Region region, BusTarget& target, std::uint32_t device_latency,
           std::string label);

  [[nodiscard]] BusResponse read(Addr addr, unsigned size);
  BusResponse write(Addr addr, unsigned size, std::uint64_t value);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t hop_latency() const { return hop_latency_; }
  void set_hop_latency(std::uint32_t cycles) { hop_latency_ = cycles; }

  struct Mapping {
    Region region;
    BusTarget* target = nullptr;
    std::uint32_t device_latency = 0;
    std::string label;
  };
  [[nodiscard]] const std::vector<Mapping>& mappings() const { return mappings_; }

  /// Override the device latency of a mapped region (used by the "Optimized"
  /// RoT configuration that swaps the internal interconnect, Sec. V-B).
  void set_device_latency(const std::string& label, std::uint32_t cycles);

  /// Plain-memory window for hoisted instruction fetches: when `addr` decodes
  /// to a MemoryTarget, returns its backing sim::Memory and the mapped region
  /// (so the caller can bound page residency); null memory otherwise.  Does
  /// not count as a bus transaction — the Ibex prefetch buffer hides fetch
  /// latency anyway (fetch timing is charged via the taken-branch penalty).
  struct FetchWindow {
    sim::Memory* memory = nullptr;
    Region region{};
  };
  [[nodiscard]] FetchWindow fetch_window_target(Addr addr) {
    Mapping* mapping = lookup(addr);
    if (mapping == nullptr) {
      return {};
    }
    return {mapping->target->backing_memory(), mapping->region};
  }

  [[nodiscard]] std::uint64_t transaction_count() const { return transactions_; }

  /// Checkpoint support: topology and latencies are config-derived, so only
  /// the traffic counter persists (the MRU hint is a perf-only accelerator).
  void save_state(sim::SnapshotWriter& writer) const {
    writer.u64(transactions_);
  }
  void load_state(sim::SnapshotReader& reader) { transactions_ = reader.u64(); }

 private:
  [[nodiscard]] Mapping* lookup(Addr addr);

  std::string name_;
  std::uint32_t hop_latency_;
  std::vector<Mapping> mappings_;
  std::uint64_t transactions_ = 0;
  /// Most-recently-hit mapping (index, so vector growth can't dangle it);
  /// bus traffic is strongly clustered, making the decode scan rare.
  std::size_t mru_ = SIZE_MAX;
};

}  // namespace titan::soc

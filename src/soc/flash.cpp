#include "soc/flash.hpp"

#include <stdexcept>

namespace titan::soc {

namespace {

std::uint64_t prf(std::uint64_t key, std::uint64_t tweak) {
  sim::SplitMix64 sm(key ^ (tweak * 0x9E3779B97F4A7C15ULL));
  return sm.next();
}

}  // namespace

ScrambledFlash::ScrambledFlash(std::uint64_t key, std::uint32_t size_words)
    : key_(key), size_words_(size_words), index_bits_(0) {
  if (size_words == 0 || (size_words & (size_words - 1)) != 0) {
    throw std::invalid_argument("ScrambledFlash: size must be a power of two");
  }
  while ((1u << index_bits_) < size_words_) {
    ++index_bits_;
  }
}

std::uint32_t ScrambledFlash::scramble_address(std::uint32_t word_index) const {
  // Keyed bijection over the 2^n word indices built from three invertible
  // primitives mod 2^n: XOR with a key-derived constant, multiplication by an
  // odd key-derived constant, and a xorshift fold.  Each step is a bijection,
  // so the composition is a permutation of the bank for every key.
  const std::uint32_t mask = size_words_ - 1;
  if (mask == 0) {
    return 0;
  }
  const auto k1 = static_cast<std::uint32_t>(prf(key_, 1));
  const auto k2 = static_cast<std::uint32_t>(prf(key_, 2)) | 1u;  // odd
  const auto k3 = static_cast<std::uint32_t>(prf(key_, 3));
  const unsigned shift = index_bits_ / 2 == 0 ? 1 : index_bits_ / 2;

  std::uint32_t x = word_index & mask;
  x ^= k1 & mask;
  x = (x * k2) & mask;
  x ^= x >> shift;
  x ^= k3 & mask;
  x = (x * k2) & mask;
  return x & mask;
}

std::uint32_t ScrambledFlash::keystream(std::uint32_t word_index) const {
  return static_cast<std::uint32_t>(prf(key_ ^ 0xDA7A, word_index));
}

void ScrambledFlash::program(std::uint32_t word_index, std::uint32_t value) {
  if (word_index >= size_words_) {
    throw std::out_of_range("ScrambledFlash: program out of range");
  }
  const std::uint32_t phys = scramble_address(word_index);
  const std::uint32_t scrambled = value ^ keystream(word_index);
  cells_[phys] = codec_.encode(scrambled);
}

EccResult ScrambledFlash::read(std::uint32_t word_index) const {
  if (word_index >= size_words_) {
    throw std::out_of_range("ScrambledFlash: read out of range");
  }
  const std::uint32_t phys = scramble_address(word_index);
  const auto it = cells_.find(phys);
  if (it == cells_.end()) {
    // Erased flash reads as all-ones data with clean ECC in this model.
    return {.data = 0xFFFFFFFFu, .status = EccStatus::kOk, .corrected_position = 0};
  }
  EccResult result = codec_.decode(it->second);
  if (result.status == EccStatus::kCorrected) {
    ++corrected_;
  } else if (result.status == EccStatus::kUncorrectable) {
    ++failed_;
    return result;
  }
  result.data = (static_cast<std::uint32_t>(result.data)) ^ keystream(word_index);
  return result;
}

void ScrambledFlash::inject_bitflip(std::uint32_t word_index, unsigned bit) {
  if (bit >= codec_.codeword_bits()) {
    throw std::out_of_range("ScrambledFlash: bit outside codeword");
  }
  const std::uint32_t phys = scramble_address(word_index);
  auto it = cells_.find(phys);
  if (it == cells_.end()) {
    throw std::logic_error("ScrambledFlash: bitflip on unprogrammed word");
  }
  it->second ^= std::uint64_t{1} << bit;
}

}  // namespace titan::soc

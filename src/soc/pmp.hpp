// RISC-V Physical Memory Protection (PMP) model.
//
// Paper Sec. VI: "We assume the CFI Mailbox cannot be tampered by other
// entities in the SoC. This is reasonable since other security IPs, such as
// RISC-V Physical Memory Protection (PMP), can be programmed to inhibit
// accesses to one or more memory regions so that issuing loads or stores to
// any address within the protected range results in an access fault
// exception."
//
// This models the machine-mode view the claim needs: NAPOT/TOR-style entry
// matching is simplified to explicit [base, size) regions with R/W/X
// permission bits and priority by entry order (lowest matching entry wins,
// as in the ISA spec).  An address matching no entry is allowed — PMP here
// is used as a deny-list for the CFI mailbox and spill arena, mirroring the
// paper's usage.
#pragma once

#include <cstdint>
#include <vector>

#include "soc/memmap.hpp"

namespace titan::soc {

enum class PmpAccess { kRead, kWrite, kExecute };

struct PmpEntry {
  Region region;
  bool allow_read = false;
  bool allow_write = false;
  bool allow_execute = false;
  const char* label = "";
};

class Pmp {
 public:
  void add_entry(const PmpEntry& entry) { entries_.push_back(entry); }

  /// Convenience: deny all data access to a region (the paper's mailbox
  /// lock-out).
  void deny_region(Region region, const char* label) {
    entries_.push_back({region, false, false, false, label});
  }

  /// True when the access is permitted.  Lowest-numbered matching entry
  /// decides; no match means allowed.
  [[nodiscard]] bool check(Addr addr, PmpAccess access) const {
    for (const PmpEntry& entry : entries_) {
      if (!entry.region.contains(addr)) {
        continue;
      }
      switch (access) {
        case PmpAccess::kRead: return entry.allow_read;
        case PmpAccess::kWrite: return entry.allow_write;
        case PmpAccess::kExecute: return entry.allow_execute;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] const std::vector<PmpEntry>& entries() const { return entries_; }

  /// The configuration the paper's threat model implies: the host's
  /// untrusted software may never touch the CFI mailbox or the RoT's
  /// authenticated spill arena directly.
  [[nodiscard]] static Pmp titancfi_default() {
    Pmp pmp;
    pmp.deny_region(kCfiMailbox, "cfi-mailbox");
    pmp.deny_region(kSpillArena, "spill-arena");
    return pmp;
  }

 private:
  std::vector<PmpEntry> entries_;
};

}  // namespace titan::soc

// MMIO front-end for the HMAC accelerator, as seen by Ibex firmware.
//
// Register map (word offsets from kRotHmacAccel.base):
//   0x00 CMD      (W) write 1 to start MAC over [SRC, SRC+LEN)
//   0x04 STATUS   (R) 1 when the engine is idle/done at the current time
//   0x08 SRC      (RW) source buffer address
//   0x0C LEN      (RW) source length in bytes
//   0x10 KEY_SEL  (RW) key slot (the real block has a sideloaded key; we
//                      model two slots derived from the device secret)
//   0x20..0x3C DIGEST0..7 (R) big-endian digest words
//
// Timing: the engine is asynchronous.  A start command computes the digest
// functionally and arms `done_at = now() + cost`; STATUS reads compare
// against the caller-provided clock, so a polling firmware pays real cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "crypto/accel.hpp"
#include "sim/snapshot.hpp"
#include "soc/bus.hpp"

namespace titan::soc {

/// Derive the HMAC key for a sideloaded key slot from the device secret.
/// Shared between the RoT-side accelerator and the host-side CFI Log Writer
/// model so both ends of an authenticated burst agree on the slot key; the
/// returned HmacKey carries precomputed ipad/opad midstates.
[[nodiscard]] crypto::HmacKey derive_slot_key(std::uint64_t device_secret,
                                              std::uint32_t key_sel);

class HmacMmio final : public BusTarget {
 public:
  static constexpr Addr kCmd = 0x00;
  static constexpr Addr kStatus = 0x04;
  static constexpr Addr kSrc = 0x08;
  static constexpr Addr kLen = 0x0C;
  static constexpr Addr kKeySel = 0x10;
  static constexpr Addr kDigestBase = 0x20;

  using ClockFn = std::function<std::uint64_t()>;

  /// `data_bus`: fabric the engine DMAs the source buffer from.
  /// `clock`: returns the current RoT cycle (drives STATUS timing).
  HmacMmio(Crossbar& data_bus, std::uint64_t device_secret, ClockFn clock);

  std::uint64_t read(Addr addr, unsigned size) override;
  void write(Addr addr, unsigned size, std::uint64_t value) override;

  [[nodiscard]] const crypto::HmacAccel& engine() const { return engine_; }
  [[nodiscard]] std::uint64_t starts() const { return starts_; }

  /// Checkpoint support: MMIO registers, in-flight completion time, digest,
  /// and the engine usage counters.  The key-slot cache is NOT serialized —
  /// slot keys are a pure function of the config-derived device secret, so
  /// a warm run re-derives them with zero observable state (no bus traffic,
  /// no counters).
  void save_state(sim::SnapshotWriter& writer) const;
  void load_state(sim::SnapshotReader& reader);

 private:
  void start();
  [[nodiscard]] const crypto::HmacKey& key_for(std::uint32_t key_sel);

  Crossbar& data_bus_;
  std::uint64_t device_secret_;
  ClockFn clock_;
  crypto::HmacAccel engine_;
  /// Key slots derived from the device secret are immutable, so their
  /// ipad/opad midstates are computed once per slot, not per log.  Bounded:
  /// KEY_SEL is an arbitrary guest value, not a cache key to trust.
  static constexpr std::size_t kMaxKeySlots = 16;
  std::unordered_map<std::uint32_t, crypto::HmacKey> key_slots_;

  std::uint32_t src_ = 0;
  std::uint32_t len_ = 0;
  std::uint32_t key_sel_ = 0;
  std::uint64_t done_at_ = 0;
  crypto::Digest digest_{};
  std::uint64_t starts_ = 0;
};

}  // namespace titan::soc

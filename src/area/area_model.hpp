// Structural FPGA-area estimator (Table IV substitute).
//
// We cannot run Vivado in this environment, so hardware cost is estimated
// structurally: every component of the CFI stage reports LUT/FF/BRAM counts
// derived from its parameters (register widths, FIFO geometry, FSM states,
// comparator widths), using standard Xilinx UltraScale+ mapping heuristics
// (1 FF per register bit, ~0.4 LUT per mux-ed register bit, 6-input LUTs for
// comparators, FIFOs below 1 Kb in distributed RAM — hence zero BRAM).  The
// constants are calibrated once so the depth-1 configuration reproduces the
// paper's measured deltas; everything else (scaling with queue depth, the
// zero-BRAM claim, host-vs-SoC split) follows from structure.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace titan::area {

struct AreaEstimate {
  double luts = 0;
  double regs = 0;
  double brams = 0;

  AreaEstimate& operator+=(const AreaEstimate& other) {
    luts += other.luts;
    regs += other.regs;
    brams += other.brams;
    return *this;
  }
  friend AreaEstimate operator+(AreaEstimate a, const AreaEstimate& b) {
    a += b;
    return a;
  }
};

/// Per-component breakdown for reports and the ablation bench.
struct AreaReport {
  std::vector<std::pair<std::string, AreaEstimate>> components;
  [[nodiscard]] AreaEstimate total() const;
  void print(std::ostream& os) const;
};

// ---- Component estimators -----------------------------------------------------

/// Register-based FIFO (the CFI Queue): width bits x depth entries.
[[nodiscard]] AreaEstimate fifo(unsigned width_bits, unsigned depth);
/// One CFI Filter: scoreboard-entry decode + CF classification comparators.
[[nodiscard]] AreaEstimate cfi_filter();
/// Queue Controller: push arbitration + stall logic.
[[nodiscard]] AreaEstimate queue_controller();
/// Log Writer: FSM + beat shift register + AXI master port.
[[nodiscard]] AreaEstimate log_writer(unsigned log_bits, unsigned bus_bits);
/// CFI Mailbox: data registers + doorbell/completion + TL-UL slave port.
[[nodiscard]] AreaEstimate mailbox(unsigned data_regs, unsigned reg_bits);

// ---- Roll-ups -------------------------------------------------------------------

/// Host-core delta (everything added inside CVA6: filters, queue, controller,
/// log writer).
[[nodiscard]] AreaReport host_delta(unsigned queue_depth);
/// SoC-level delta (host delta + CFI mailbox + fabric port).
[[nodiscard]] AreaReport soc_delta(unsigned queue_depth);

// ---- Published reference numbers (Table IV) ---------------------------------------

struct TableIvRow {
  const char* scope;
  double without_cfi_luts, with_cfi_luts;
  double without_cfi_regs, with_cfi_regs;
  double without_cfi_brams, with_cfi_brams;
};

/// Paper-reported absolute utilisation for host/SoC/DExIE.
[[nodiscard]] const std::vector<TableIvRow>& paper_reference();

}  // namespace titan::area

#include "area/area_model.hpp"

#include <iomanip>

namespace titan::area {

namespace {

// Mapping heuristics (Xilinx UltraScale+, 6-input LUTs).
constexpr double kLutPerMuxBit = 0.45;   // 2:1 mux + write-enable per FF bit
constexpr double kLutPerCmpBit = 0.35;   // wide equality/magnitude compare
constexpr double kFsmRegPerState = 1.0;  // one-hot state register
constexpr double kFsmLutPerState = 4.0;  // next-state + output decode

}  // namespace

AreaEstimate AreaReport::total() const {
  AreaEstimate sum;
  for (const auto& [name, estimate] : components) {
    sum += estimate;
  }
  return sum;
}

void AreaReport::print(std::ostream& os) const {
  for (const auto& [name, estimate] : components) {
    os << "    " << std::left << std::setw(24) << name << std::right
       << std::setw(8) << static_cast<long>(estimate.luts) << std::setw(8)
       << static_cast<long>(estimate.regs) << std::setw(6)
       << static_cast<long>(estimate.brams) << "\n";
  }
  const AreaEstimate sum = total();
  os << "    " << std::left << std::setw(24) << "TOTAL" << std::right
     << std::setw(8) << static_cast<long>(sum.luts) << std::setw(8)
     << static_cast<long>(sum.regs) << std::setw(6)
     << static_cast<long>(sum.brams) << "\n";
}

AreaEstimate fifo(unsigned width_bits, unsigned depth) {
  AreaEstimate estimate;
  estimate.regs = static_cast<double>(width_bits) * depth  // storage
                  + 2.0 * 6                                // rd/wr pointers
                  + 4;                                     // status flags
  estimate.luts = kLutPerMuxBit * width_bits * depth       // input muxing
                  + 0.5 * width_bits                       // output mux
                  + 30;                                    // pointer compare
  // FIFOs this small map to distributed RAM / FFs: no BRAM (the paper's key
  // Table IV observation vs DExIE).
  estimate.brams = 0;
  return estimate;
}

AreaEstimate cfi_filter() {
  AreaEstimate estimate;
  // Opcode/rd/rs1 field comparators over the 32-bit encoding plus the
  // commit-log assembly muxes (224-bit from scoreboard fields).
  estimate.luts = kLutPerCmpBit * 32 * 4 + 90;
  estimate.regs = 230;  // one staged commit log + valid/kind flags
  return estimate;
}

AreaEstimate queue_controller() {
  AreaEstimate estimate;
  estimate.luts = 60;  // push arbitration, full/dual-CF stall decode
  estimate.regs = 12;
  return estimate;
}

AreaEstimate log_writer(unsigned log_bits, unsigned bus_bits) {
  AreaEstimate estimate;
  const unsigned states = 6;  // Idle/Write/Doorbell/Wait/Read/Fault
  estimate.regs = kFsmRegPerState * states + log_bits  // beat shift register
                  + 8                                  // beat counter, flags
                  + 2.0 * bus_bits / 4;                // AXI AW/W staging
  estimate.luts = kFsmLutPerState * states + kLutPerMuxBit * log_bits +
                  0.8 * bus_bits +  // AXI master handshake + beat select
                  40;
  return estimate;
}

AreaEstimate mailbox(unsigned data_regs, unsigned reg_bits) {
  AreaEstimate estimate;
  estimate.regs = static_cast<double>(data_regs) * reg_bits + 2 + 16;
  estimate.luts = kLutPerMuxBit * data_regs * reg_bits  // write decode
                  + 0.6 * reg_bits                      // read mux
                  + 80;                                 // TL-UL slave + irq
  return estimate;
}

namespace {

/// Commit-stage integration cost: scoreboard field taps on both commit
/// ports, staging/valid registers, and the stall feedback into the commit
/// controller.  Calibrated against the paper's measured host delta.
AreaEstimate commit_stage_glue() {
  AreaEstimate estimate;
  estimate.luts = 330;
  estimate.regs = 700;
  return estimate;
}

/// Extra AXI crossbar master port for the Log Writer (SoC-level cost).
AreaEstimate axi_port_adapter() {
  AreaEstimate estimate;
  estimate.luts = 30;
  estimate.regs = 230;
  return estimate;
}

}  // namespace

AreaReport host_delta(unsigned queue_depth) {
  AreaReport report;
  report.components.emplace_back("cfi_filter x2", cfi_filter() + cfi_filter());
  report.components.emplace_back("cfi_queue", fifo(224, queue_depth));
  report.components.emplace_back("queue_controller", queue_controller());
  report.components.emplace_back("log_writer", log_writer(224, 64));
  report.components.emplace_back("commit_stage_glue", commit_stage_glue());
  return report;
}

AreaReport soc_delta(unsigned queue_depth) {
  AreaReport report = host_delta(queue_depth);
  report.components.emplace_back("cfi_mailbox", mailbox(4, 64));
  report.components.emplace_back("axi_port_adapter", axi_port_adapter());
  return report;
}

const std::vector<TableIvRow>& paper_reference() {
  static const std::vector<TableIvRow> rows = {
      // scope, LUT w/o, LUT w/, Regs w/o, Regs w/, BRAM w/o, BRAM w/
      {"Host", 5.02e4, 5.14e4, 3.04e4, 3.22e4, 66, 66},
      {"SoC", 4.41e5, 4.41e5 + 1.33e3, 2.57e5, 2.58e5, 268, 268},
      {"DExIE [8]", 4.66e3, 8.02e3, 3.09e3, 5.33e3, 136, 142},
  };
  return rows;
}

}  // namespace titan::area

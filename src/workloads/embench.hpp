// Benchmark statistics and the calibrated synthetic commit-trace generator.
//
// The paper evaluates on EmBench-IoT v1.0 and RISC-V-Tests compiled with GCC
// 12.2 -O3 and run on the RTL of the reference SoC.  We have neither the RTL
// nor a RISC-V GCC, but Table III publishes, for every benchmark, the two
// quantities that drive the trace-driven overhead model: total cycles and the
// number of retired control-flow instructions.  The generator reproduces
// traces with those exact first-order statistics plus a two-parameter
// temporal structure:
//
//   * window_fraction (phi) — the fraction of the run that contains the CF
//     activity (programs have CF-dense phases);
//   * cluster — how many CF ops commit back-to-back (call/return pairs and
//     call ladders), with a small intra-cluster gap.
//
// phi is fitted against the paper's published IRQ column of Table III (queue
// depth 8) and cluster against the IRQ column of Table II (queue depth 1);
// the Polling and Optimized columns are *predictions* used to validate the
// model (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace titan::workloads {

struct BenchmarkStats {
  std::string_view name;
  std::string_view suite;  ///< "embench" or "riscv-tests"
  double cycles;           ///< Baseline run length (Table III "Cycles").
  double cf_count;         ///< Retired CF instructions (Table III "CF").
  // Table III slowdowns [%] at queue depth 8; -1 encodes "-" (negligible).
  double paper_opt, paper_poll, paper_irq;
  // Table II slowdowns [%] at queue depth 1; -2 encodes "not in Table II".
  double paper2_opt, paper2_poll, paper2_irq;

  [[nodiscard]] bool in_table2() const { return paper2_irq > -2; }
};

/// Every row of Table III (EmBench-IoT + RISC-V-Tests).
[[nodiscard]] const std::vector<BenchmarkStats>& benchmark_table();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const BenchmarkStats* find_benchmark(std::string_view name);

/// Temporal-structure parameters of a synthetic trace.
struct TraceParams {
  double window_fraction = 1.0;  ///< phi in (0, 1].
  unsigned cluster = 2;          ///< CF ops per burst.
  unsigned intra_gap = 8;        ///< Cycles between CF ops inside a burst.
};

/// Generate the commit cycles of the CF instructions for a benchmark.
[[nodiscard]] std::vector<sim::Cycle> synthesize_cf_cycles(
    const BenchmarkStats& stats, const TraceParams& params,
    std::uint64_t seed = 1);

/// Fit (phi, cluster) against the published IRQ columns.  Deterministic.
[[nodiscard]] TraceParams calibrate(const BenchmarkStats& stats);

/// Paper check latencies (Sec. V-C).
inline constexpr std::uint32_t kIrqLatency = 267;
inline constexpr std::uint32_t kPollingLatency = 112;
inline constexpr std::uint32_t kOptimizedLatency = 73;

}  // namespace titan::workloads

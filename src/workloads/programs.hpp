// Hand-assembled RV64 workload programs for the CVA6 model.
//
// These run end-to-end on the full co-simulation (CVA6 + CFI stage + RoT
// firmware) and on the bare host model.  They serve three purposes:
//  * integration tests — known exit codes, zero CFI violations;
//  * attack demonstrations — rop_victim overwrites its saved return address
//    and must be caught by the shadow stack at the exact return;
//  * validation of the trace-driven overhead model against real co-sim runs.
//
// Convention: programs end with ECALL; the exit code is a0.
#pragma once

#include <cstdint>

#include "rv/assembler.hpp"

namespace titan::workloads {

/// Program load address (host DRAM) and initial stack top.
inline constexpr std::uint64_t kProgramBase = 0x8000'0000;
inline constexpr std::uint64_t kStackTop = 0x8080'0000;

/// Recursive Fibonacci: call/return dense.  Exit code: fib(n).
[[nodiscard]] rv::Image fib_recursive(unsigned n);

/// n x n integer matrix multiply; exit code: checksum mod 256.
[[nodiscard]] rv::Image matmul(unsigned n);

/// Bitwise CRC-32 over a generated buffer; exit code: crc & 0xFF.
[[nodiscard]] rv::Image crc32(unsigned len);

/// Recursive quicksort over an LCG-filled array; exit code: 1 when sorted.
[[nodiscard]] rv::Image quicksort(unsigned n);

/// Integer statistics kernel (Embench `st`-class, paper Table II): fills an
/// LCG buffer, then computes the mean and a running variance with one
/// integer division per element — long-latency (divider-bound) straight-line
/// code with no CFI-relevant instructions in the hot loop.  Exit code:
/// (mean + variance accumulator) & 0xFF.
[[nodiscard]] rv::Image stats(unsigned n);

/// Deep call chain (depth levels) — forces shadow-stack spill/fill when
/// depth exceeds the RoT on-chip capacity.  Exit code: depth & 0xFF.
[[nodiscard]] rv::Image call_chain(unsigned depth);

/// Indirect dispatch through a function-pointer table (jalr calls).
/// Exit code: accumulated handler sum & 0xFF.
[[nodiscard]] rv::Image indirect_dispatch(unsigned iterations);

/// ROP victim: overwrites its saved return address on the stack and returns
/// into `attacker`, which exits with code 66.  Architecturally the program
/// "works"; the shadow stack must flag the tampered return.
[[nodiscard]] rv::Image rop_victim();


/// Random call-graph program for fuzz-style CFI validation: `functions`
/// functions arranged as a DAG (function i may call only j > i, so the
/// program always terminates), bodies mixing ALU work with 0-2 calls.
/// When `inject_rop` is true, one randomly chosen function overwrites its
/// saved return address with the gadget's address before returning — a
/// well-formed architectural execution that the shadow stack must flag.
/// Victim placement draws from a dedicated RNG stream, so the benign and
/// attacked images of one seed differ only in the victim's epilogue.
/// Exit code: accumulated work value & 0xFF (gadget exits with 66).
[[nodiscard]] rv::Image random_callgraph(std::uint64_t seed,
                                         unsigned functions = 8,
                                         bool inject_rop = false);

}  // namespace titan::workloads

#include "workloads/programs.hpp"

#include <vector>

#include "sim/rng.hpp"

namespace titan::workloads {

namespace {

using rv::Assembler;
using rv::Reg;
using rv::Xlen;

Assembler make_asm() { return Assembler(Xlen::k64, kProgramBase); }

void prologue(Assembler& a) {
  a.li(Reg::kSp, static_cast<std::int64_t>(kStackTop));
}

void exit_with_a0(Assembler& a) { a.ecall(); }

}  // namespace

rv::Image fib_recursive(unsigned n) {
  Assembler a = make_asm();
  auto fib = a.new_label();
  auto base_case = a.new_label();

  prologue(a);
  a.li(Reg::kA0, n);
  a.call(fib);
  a.andi(Reg::kA0, Reg::kA0, 0xFF);
  exit_with_a0(a);

  a.bind(fib);
  a.li(Reg::kT0, 2);
  a.bltu(Reg::kA0, Reg::kT0, base_case);
  a.addi(Reg::kSp, Reg::kSp, -24);
  a.sd(Reg::kRa, Reg::kSp, 0);
  a.sd(Reg::kS0, Reg::kSp, 8);
  a.sd(Reg::kS1, Reg::kSp, 16);
  a.mv(Reg::kS0, Reg::kA0);
  a.addi(Reg::kA0, Reg::kS0, -1);
  a.call(fib);
  a.mv(Reg::kS1, Reg::kA0);
  a.addi(Reg::kA0, Reg::kS0, -2);
  a.call(fib);
  a.add(Reg::kA0, Reg::kA0, Reg::kS1);
  a.ld(Reg::kRa, Reg::kSp, 0);
  a.ld(Reg::kS0, Reg::kSp, 8);
  a.ld(Reg::kS1, Reg::kSp, 16);
  a.addi(Reg::kSp, Reg::kSp, 24);
  a.ret();
  a.bind(base_case);
  a.ret();

  return a.finish();
}

rv::Image matmul(unsigned n) {
  Assembler a = make_asm();
  const std::int64_t mat_a = 0x8010'0000;
  const std::int64_t mat_b = 0x8011'0000;
  const std::int64_t mat_c = 0x8012'0000;

  prologue(a);
  // Fill A[i] = i*3+1, B[i] = i*5+2 (64-bit words).
  a.li(Reg::kT0, mat_a);
  a.li(Reg::kT1, mat_b);
  a.li(Reg::kT2, 0);                 // i
  a.li(Reg::kT3, static_cast<std::int64_t>(n) * n);
  {
    auto fill = a.here();
    a.li(Reg::kT4, 3);
    a.mul(Reg::kT4, Reg::kT2, Reg::kT4);
    a.addi(Reg::kT4, Reg::kT4, 1);
    a.sd(Reg::kT4, Reg::kT0, 0);
    a.li(Reg::kT4, 5);
    a.mul(Reg::kT4, Reg::kT2, Reg::kT4);
    a.addi(Reg::kT4, Reg::kT4, 2);
    a.sd(Reg::kT4, Reg::kT1, 0);
    a.addi(Reg::kT0, Reg::kT0, 8);
    a.addi(Reg::kT1, Reg::kT1, 8);
    a.addi(Reg::kT2, Reg::kT2, 1);
    a.bltu(Reg::kT2, Reg::kT3, fill);
  }

  // Triple loop: C[i][j] = sum_k A[i][k] * B[k][j].
  a.li(Reg::kS0, 0);  // i
  auto loop_i = a.here();
  a.li(Reg::kS1, 0);  // j
  auto loop_j = a.here();
  a.li(Reg::kS2, 0);  // k
  a.li(Reg::kS3, 0);  // acc
  auto loop_k = a.here();
  // A[i*n + k]
  a.li(Reg::kT0, n);
  a.mul(Reg::kT1, Reg::kS0, Reg::kT0);
  a.add(Reg::kT1, Reg::kT1, Reg::kS2);
  a.slli(Reg::kT1, Reg::kT1, 3);
  a.li(Reg::kT2, mat_a);
  a.add(Reg::kT1, Reg::kT1, Reg::kT2);
  a.ld(Reg::kT1, Reg::kT1, 0);
  // B[k*n + j]
  a.mul(Reg::kT3, Reg::kS2, Reg::kT0);
  a.add(Reg::kT3, Reg::kT3, Reg::kS1);
  a.slli(Reg::kT3, Reg::kT3, 3);
  a.li(Reg::kT2, mat_b);
  a.add(Reg::kT3, Reg::kT3, Reg::kT2);
  a.ld(Reg::kT3, Reg::kT3, 0);
  a.mul(Reg::kT1, Reg::kT1, Reg::kT3);
  a.add(Reg::kS3, Reg::kS3, Reg::kT1);
  a.addi(Reg::kS2, Reg::kS2, 1);
  a.li(Reg::kT0, n);
  a.bltu(Reg::kS2, Reg::kT0, loop_k);
  // C[i*n + j] = acc
  a.li(Reg::kT0, n);
  a.mul(Reg::kT1, Reg::kS0, Reg::kT0);
  a.add(Reg::kT1, Reg::kT1, Reg::kS1);
  a.slli(Reg::kT1, Reg::kT1, 3);
  a.li(Reg::kT2, mat_c);
  a.add(Reg::kT1, Reg::kT1, Reg::kT2);
  a.sd(Reg::kS3, Reg::kT1, 0);
  a.addi(Reg::kS1, Reg::kS1, 1);
  a.li(Reg::kT0, n);
  a.bltu(Reg::kS1, Reg::kT0, loop_j);
  a.addi(Reg::kS0, Reg::kS0, 1);
  a.li(Reg::kT0, n);
  a.bltu(Reg::kS0, Reg::kT0, loop_i);

  // Checksum C.
  a.li(Reg::kT0, mat_c);
  a.li(Reg::kT1, 0);
  a.li(Reg::kT2, static_cast<std::int64_t>(n) * n);
  a.li(Reg::kA0, 0);
  {
    auto sum = a.here();
    a.ld(Reg::kT3, Reg::kT0, 0);
    a.add(Reg::kA0, Reg::kA0, Reg::kT3);
    a.addi(Reg::kT0, Reg::kT0, 8);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.bltu(Reg::kT1, Reg::kT2, sum);
  }
  a.andi(Reg::kA0, Reg::kA0, 0xFF);
  exit_with_a0(a);
  return a.finish();
}

rv::Image crc32(unsigned len) {
  Assembler a = make_asm();
  const std::int64_t buffer = 0x8013'0000;

  prologue(a);
  // Fill buffer with an LCG byte stream.
  a.li(Reg::kT0, buffer);
  a.li(Reg::kT1, 0);
  a.li(Reg::kT2, len);
  a.li(Reg::kT3, 0x12345678);
  a.li(Reg::kT5, 12345);  // LCG increment (exceeds the addi immediate range)
  {
    auto fill = a.here();
    a.li(Reg::kT4, 1103515245);
    a.mul(Reg::kT3, Reg::kT3, Reg::kT4);
    a.add(Reg::kT3, Reg::kT3, Reg::kT5);
    a.srli(Reg::kT4, Reg::kT3, 16);
    a.sb(Reg::kT4, Reg::kT0, 0);
    a.addi(Reg::kT0, Reg::kT0, 1);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.bltu(Reg::kT1, Reg::kT2, fill);
  }

  // Bitwise CRC-32 (poly 0xEDB88320).  The crc register is kept below 2^32
  // so the 64-bit logical shifts behave as their 32-bit counterparts.
  a.li(Reg::kA0, 0xFFFFFFFFLL);
  a.li(Reg::kT0, buffer);
  a.li(Reg::kT1, 0);
  a.li(Reg::kT2, len);
  auto byte_loop = a.here();
  a.lbu(Reg::kT3, Reg::kT0, 0);
  a.xor_(Reg::kA0, Reg::kA0, Reg::kT3);
  a.li(Reg::kT4, 8);           // bit counter
  auto bit_loop = a.here();
  a.andi(Reg::kT5, Reg::kA0, 1);
  a.srli(Reg::kA0, Reg::kA0, 1);
  {
    auto no_xor = a.new_label();
    a.beqz(Reg::kT5, no_xor);
    a.li(Reg::kT6, 0xEDB88320);
    a.xor_(Reg::kA0, Reg::kA0, Reg::kT6);
    a.bind(no_xor);
  }
  a.addi(Reg::kT4, Reg::kT4, -1);
  a.bnez(Reg::kT4, bit_loop);
  a.addi(Reg::kT0, Reg::kT0, 1);
  a.addi(Reg::kT1, Reg::kT1, 1);
  a.bltu(Reg::kT1, Reg::kT2, byte_loop);
  a.andi(Reg::kA0, Reg::kA0, 0xFF);
  exit_with_a0(a);
  return a.finish();
}

rv::Image stats(unsigned n) {
  Assembler a = make_asm();
  const std::int64_t buffer = 0x8016'0000;

  prologue(a);
  // Fill x[i] with a positive LCG stream (64-bit words, truncated to 20
  // bits so the squared deviations stay far from overflow).
  a.li(Reg::kT0, buffer);
  a.li(Reg::kT1, 0);
  a.li(Reg::kT2, n);
  a.li(Reg::kT3, 0x2545F491);
  a.li(Reg::kT5, 12345);
  {
    auto fill = a.here();
    a.li(Reg::kT4, 1103515245);
    a.mul(Reg::kT3, Reg::kT3, Reg::kT4);
    a.add(Reg::kT3, Reg::kT3, Reg::kT5);
    a.srli(Reg::kT4, Reg::kT3, 16);
    a.li(Reg::kT6, 0xFFFFF);
    a.and_(Reg::kT4, Reg::kT4, Reg::kT6);
    a.sd(Reg::kT4, Reg::kT0, 0);
    a.addi(Reg::kT0, Reg::kT0, 8);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.bltu(Reg::kT1, Reg::kT2, fill);
  }

  // Pass 1: mean = sum(x) / n.
  a.li(Reg::kT0, buffer);
  a.li(Reg::kT1, 0);
  a.li(Reg::kS0, 0);  // sum
  {
    auto sum = a.here();
    a.ld(Reg::kT3, Reg::kT0, 0);
    a.add(Reg::kS0, Reg::kS0, Reg::kT3);
    a.addi(Reg::kT0, Reg::kT0, 8);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.bltu(Reg::kT1, Reg::kT2, sum);
  }
  a.li(Reg::kT3, n);
  a.divu(Reg::kS1, Reg::kS0, Reg::kT3);  // mean

  // Pass 2: running variance — one divider pass per element, the Embench
  // `st` signature: acc += (x[i] - mean)^2 / (i + 1).
  a.li(Reg::kT0, buffer);
  a.li(Reg::kT1, 0);
  a.li(Reg::kS2, 0);  // acc
  {
    auto var = a.here();
    a.ld(Reg::kT3, Reg::kT0, 0);
    a.sub(Reg::kT3, Reg::kT3, Reg::kS1);
    a.mul(Reg::kT3, Reg::kT3, Reg::kT3);
    a.addi(Reg::kT4, Reg::kT1, 1);
    a.divu(Reg::kT3, Reg::kT3, Reg::kT4);
    a.add(Reg::kS2, Reg::kS2, Reg::kT3);
    a.addi(Reg::kT0, Reg::kT0, 8);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.bltu(Reg::kT1, Reg::kT2, var);
  }
  a.add(Reg::kA0, Reg::kS1, Reg::kS2);
  a.andi(Reg::kA0, Reg::kA0, 0xFF);
  exit_with_a0(a);
  return a.finish();
}

rv::Image quicksort(unsigned n) {
  Assembler a = make_asm();
  const std::int64_t array = 0x8014'0000;

  auto qsort_fn = a.new_label();
  auto qsort_done = a.new_label();

  prologue(a);
  // Fill with LCG values.
  a.li(Reg::kT0, array);
  a.li(Reg::kT1, 0);
  a.li(Reg::kT2, n);
  a.li(Reg::kT3, 987654321);
  a.li(Reg::kT5, 12345);  // LCG increment (exceeds the addi immediate range)
  {
    auto fill = a.here();
    a.li(Reg::kT4, 1103515245);
    a.mul(Reg::kT3, Reg::kT3, Reg::kT4);
    a.add(Reg::kT3, Reg::kT3, Reg::kT5);
    a.srli(Reg::kT4, Reg::kT3, 13);
    a.andi(Reg::kT4, Reg::kT4, 0x7FF);
    a.sd(Reg::kT4, Reg::kT0, 0);
    a.addi(Reg::kT0, Reg::kT0, 8);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.bltu(Reg::kT1, Reg::kT2, fill);
  }
  // quicksort(lo=0, hi=n-1) — indices in a0/a1, array base in s11.
  a.li(Reg::kS11, array);
  a.li(Reg::kA0, 0);
  a.li(Reg::kA1, static_cast<std::int64_t>(n) - 1);
  a.call(qsort_fn);
  // Verify sortedness: a0 = 1 when sorted.
  a.li(Reg::kT0, array);
  a.li(Reg::kT1, 1);
  a.li(Reg::kT2, n);
  a.li(Reg::kA0, 1);
  {
    auto check = a.new_label();
    auto fail = a.new_label();
    auto done = a.new_label();
    a.bind(check);
    a.bgeu(Reg::kT1, Reg::kT2, done);
    a.ld(Reg::kT3, Reg::kT0, 0);
    a.ld(Reg::kT4, Reg::kT0, 8);
    a.bltu(Reg::kT4, Reg::kT3, fail);
    a.addi(Reg::kT0, Reg::kT0, 8);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.j(check);
    a.bind(fail);
    a.li(Reg::kA0, 0);
    a.bind(done);
  }
  exit_with_a0(a);

  // void qsort(lo=a0, hi=a1): Lomuto partition, recursive.
  a.bind(qsort_fn);
  a.bge(Reg::kA0, Reg::kA1, qsort_done);
  a.addi(Reg::kSp, Reg::kSp, -32);
  a.sd(Reg::kRa, Reg::kSp, 0);
  a.sd(Reg::kS0, Reg::kSp, 8);   // lo
  a.sd(Reg::kS1, Reg::kSp, 16);  // hi
  a.sd(Reg::kS2, Reg::kSp, 24);  // store index i
  a.mv(Reg::kS0, Reg::kA0);
  a.mv(Reg::kS1, Reg::kA1);
  // pivot = arr[hi] (t0), i = lo (s2), j = lo (t1)
  a.slli(Reg::kT0, Reg::kS1, 3);
  a.add(Reg::kT0, Reg::kT0, Reg::kS11);
  a.ld(Reg::kT0, Reg::kT0, 0);
  a.mv(Reg::kS2, Reg::kS0);
  a.mv(Reg::kT1, Reg::kS0);
  {
    auto part_loop = a.here();
    auto no_swap = a.new_label();
    auto part_end = a.new_label();
    a.bge(Reg::kT1, Reg::kS1, part_end);
    a.slli(Reg::kT2, Reg::kT1, 3);
    a.add(Reg::kT2, Reg::kT2, Reg::kS11);
    a.ld(Reg::kT3, Reg::kT2, 0);          // arr[j]
    a.bgeu(Reg::kT3, Reg::kT0, no_swap);
    // swap arr[i], arr[j]
    a.slli(Reg::kT4, Reg::kS2, 3);
    a.add(Reg::kT4, Reg::kT4, Reg::kS11);
    a.ld(Reg::kT5, Reg::kT4, 0);
    a.sd(Reg::kT3, Reg::kT4, 0);
    a.sd(Reg::kT5, Reg::kT2, 0);
    a.addi(Reg::kS2, Reg::kS2, 1);
    a.bind(no_swap);
    a.addi(Reg::kT1, Reg::kT1, 1);
    a.j(part_loop);
    a.bind(part_end);
  }
  // swap arr[i], arr[hi]
  a.slli(Reg::kT4, Reg::kS2, 3);
  a.add(Reg::kT4, Reg::kT4, Reg::kS11);
  a.ld(Reg::kT5, Reg::kT4, 0);
  a.slli(Reg::kT2, Reg::kS1, 3);
  a.add(Reg::kT2, Reg::kT2, Reg::kS11);
  a.ld(Reg::kT3, Reg::kT2, 0);
  a.sd(Reg::kT3, Reg::kT4, 0);
  a.sd(Reg::kT5, Reg::kT2, 0);
  // recurse left: (lo, i-1)
  a.mv(Reg::kA0, Reg::kS0);
  a.addi(Reg::kA1, Reg::kS2, -1);
  a.call(qsort_fn);
  // recurse right: (i+1, hi)
  a.addi(Reg::kA0, Reg::kS2, 1);
  a.mv(Reg::kA1, Reg::kS1);
  a.call(qsort_fn);
  a.ld(Reg::kRa, Reg::kSp, 0);
  a.ld(Reg::kS0, Reg::kSp, 8);
  a.ld(Reg::kS1, Reg::kSp, 16);
  a.ld(Reg::kS2, Reg::kSp, 24);
  a.addi(Reg::kSp, Reg::kSp, 32);
  a.bind(qsort_done);
  a.ret();

  return a.finish();
}

rv::Image call_chain(unsigned depth) {
  Assembler a = make_asm();
  auto chain = a.new_label();
  auto leaf = a.new_label();

  prologue(a);
  a.li(Reg::kA0, depth);
  a.call(chain);
  a.li(Reg::kA0, depth & 0xFF);
  exit_with_a0(a);

  a.bind(chain);
  a.beqz(Reg::kA0, leaf);
  a.addi(Reg::kSp, Reg::kSp, -16);
  a.sd(Reg::kRa, Reg::kSp, 0);
  a.addi(Reg::kA0, Reg::kA0, -1);
  a.call(chain);
  a.ld(Reg::kRa, Reg::kSp, 0);
  a.addi(Reg::kSp, Reg::kSp, 16);
  a.bind(leaf);
  a.ret();

  return a.finish();
}

rv::Image indirect_dispatch(unsigned iterations) {
  Assembler a = make_asm();
  auto table = a.new_label();
  auto h0 = a.new_label();
  auto h1 = a.new_label();
  auto h2 = a.new_label();
  auto h3 = a.new_label();

  prologue(a);
  a.la(Reg::kS0, table);
  a.li(Reg::kS1, iterations);
  a.li(Reg::kS2, 0);  // accumulator
  {
    auto loop = a.here();
    a.andi(Reg::kT0, Reg::kS1, 3);
    a.slli(Reg::kT0, Reg::kT0, 3);
    a.add(Reg::kT1, Reg::kS0, Reg::kT0);
    a.ld(Reg::kT2, Reg::kT1, 0);
    a.callr(Reg::kT2);  // jalr ra, 0(t2): indirect call
    a.addi(Reg::kS1, Reg::kS1, -1);
    a.bnez(Reg::kS1, loop);
  }
  a.andi(Reg::kA0, Reg::kS2, 0xFF);
  exit_with_a0(a);

  a.bind(h0);
  a.addi(Reg::kS2, Reg::kS2, 1);
  a.ret();
  a.bind(h1);
  a.addi(Reg::kS2, Reg::kS2, 3);
  a.ret();
  a.bind(h2);
  a.addi(Reg::kS2, Reg::kS2, 5);
  a.ret();
  a.bind(h3);
  a.addi(Reg::kS2, Reg::kS2, 7);
  a.ret();

  a.align(8);
  a.bind(table);
  // Function-pointer table: filled with absolute addresses post-layout is
  // not possible in one pass, so store auipc-computed addresses at runtime?
  // Simpler: the table is data — emit placeholders and patch via la/sd in a
  // second init loop below.  Instead we emit the addresses directly: labels
  // are bound above, so addr_of is valid at finish(); but data64 takes a
  // value now.  We therefore emit the table as code-relative entries using
  // a second pass: reserve space here.
  a.data64(0);
  a.data64(0);
  a.data64(0);
  a.data64(0);

  rv::Image image = a.finish();
  // Patch the table with the resolved handler addresses.
  const std::uint64_t table_addr = a.addr_of(table);
  const std::uint64_t handlers[4] = {a.addr_of(h0), a.addr_of(h1),
                                     a.addr_of(h2), a.addr_of(h3)};
  for (unsigned i = 0; i < 4; ++i) {
    const std::size_t offset = table_addr - image.base + 8 * i;
    for (unsigned b = 0; b < 8; ++b) {
      image.bytes[offset + b] =
          static_cast<std::uint8_t>(handlers[i] >> (8 * b));
    }
  }
  return image;
}

rv::Image rop_victim() {
  Assembler a = make_asm();
  auto victim = a.new_label();
  auto attacker = a.new_label();

  prologue(a);
  a.call(victim);
  a.li(Reg::kA0, 0);  // benign exit (never reached after the hijack)
  exit_with_a0(a);

  a.bind(victim);
  a.addi(Reg::kSp, Reg::kSp, -16);
  a.sd(Reg::kRa, Reg::kSp, 8);
  // --- simulated stack-buffer overflow: the "attacker" overwrites the
  // saved return address with the gadget address -------------------------
  a.la(Reg::kT0, attacker);
  a.sd(Reg::kT0, Reg::kSp, 8);
  // -----------------------------------------------------------------------
  a.ld(Reg::kRa, Reg::kSp, 8);
  a.addi(Reg::kSp, Reg::kSp, 16);
  a.ret();  // control-flow hijack happens HERE

  a.bind(attacker);
  a.li(Reg::kA0, 66);  // "malicious" behaviour
  exit_with_a0(a);

  return a.finish();
}

rv::Image random_callgraph(std::uint64_t seed, unsigned functions,
                           bool inject_rop) {
  sim::Rng rng(seed);
  Assembler a = make_asm();
  std::vector<Assembler::Label> fn(functions);
  for (auto& label : fn) {
    label = a.new_label();
  }
  auto gadget = a.new_label();
  // Victim placement draws from its own stream: toggling inject_rop must
  // change exactly one epilogue, not reshuffle every function body behind it
  // (the body draws from `rng` stay aligned between the benign and attacked
  // images of the same seed).
  sim::Rng placement(seed ^ 0x9E37'79B9'7F4A'7C15ull);
  const unsigned victim =
      inject_rop ? static_cast<unsigned>(placement.uniform(0, functions - 1))
                 : ~0u;

  // main: accumulate in s2, call the root, exit.
  prologue(a);
  a.li(Reg::kS2, 0);
  a.call(fn[0]);
  a.andi(Reg::kA0, Reg::kS2, 0xFF);
  exit_with_a0(a);

  for (unsigned i = 0; i < functions; ++i) {
    a.bind(fn[i]);
    a.addi(Reg::kSp, Reg::kSp, -16);
    a.sd(Reg::kRa, Reg::kSp, 8);
    // Random ALU body (1..4 ops on the accumulator).
    const unsigned ops = static_cast<unsigned>(rng.uniform(1, 4));
    for (unsigned op = 0; op < ops; ++op) {
      const auto delta = static_cast<std::int32_t>(rng.uniform(1, 200));
      if (rng.chance(0.5)) {
        a.addi(Reg::kS2, Reg::kS2, delta);
      } else {
        a.xori(Reg::kS2, Reg::kS2, delta);
      }
    }
    // Calls go to strictly later functions only (DAG => terminates).  The
    // chain call to i+1 guarantees every function — in particular the ROP
    // victim — is reachable; one optional extra call adds graph variety
    // while keeping the invocation count subexponential.
    if (i + 1 < functions) {
      a.call(fn[i + 1]);
      if (rng.chance(0.5)) {
        const auto callee =
            static_cast<unsigned>(rng.uniform(i + 1, functions - 1));
        a.call(fn[callee]);
      }
    }
    if (i == victim) {
      // Stack-smash simulation: replace the saved return address with the
      // gadget before the epilogue reloads it.
      a.la(Reg::kT0, gadget);
      a.sd(Reg::kT0, Reg::kSp, 8);
    }
    a.ld(Reg::kRa, Reg::kSp, 8);
    a.addi(Reg::kSp, Reg::kSp, 16);
    a.ret();
  }

  a.bind(gadget);
  a.li(Reg::kA0, 66);
  exit_with_a0(a);

  return a.finish();
}

}  // namespace titan::workloads


#include "workloads/embench.hpp"

#include <algorithm>
#include <cmath>

#include "titancfi/overhead_model.hpp"

namespace titan::workloads {

namespace {

constexpr double kNa = -1;   // "-" in Table III
constexpr double kAbs = -2;  // not present in Table II

}  // namespace

const std::vector<BenchmarkStats>& benchmark_table() {
  // name, suite, cycles, cf, TableIII{opt,poll,irq}, TableII{opt,poll,irq}
  static const std::vector<BenchmarkStats> rows = {
      {"aha-mont64", "embench", 2.51e6, 1.50e1, kNa, kNa, kNa, kNa, kNa, kNa},
      {"crc32", "embench", 3.49e6, 1.50e1, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"cubic", "embench", 1.10e6, 2.01e4, 46, 107, 390, kAbs, kAbs, kAbs},
      {"edn", "embench", 4.23e6, 3.67e2, kNa, kNa, kNa, 1, 1, 2},
      {"huffbench", "embench", 3.49e6, 2.28e3, 1, 3, 11, kAbs, kAbs, kAbs},
      {"matmult-int", "embench", 4.69e6, 2.05e2, kNa, kNa, kNa, kNa, kNa, 1},
      {"minver", "embench", 4.75e5, 4.50e3, kNa, 7, 153, kAbs, kAbs, kAbs},
      {"nbody", "embench", 1.21e5, 4.29e3, 163, 301, 849, kAbs, kAbs, kAbs},
      {"nettle-aes", "embench", 5.20e6, 7.95e2, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"nettle-sha256", "embench", 4.73e6, 8.57e3, 1, 2, 11, kAbs, kAbs, kAbs},
      {"nsichneu", "embench", 5.24e6, 1.70e1, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"picojpeg", "embench", 4.97e6, 2.14e4, 5, 15, 58, kAbs, kAbs, kAbs},
      {"qrduino", "embench", 4.61e6, 4.35e3, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"sglib-combined", "embench", 3.67e6, 2.62e4, 9, 32, 142, kAbs, kAbs, kAbs},
      {"slre", "embench", 3.57e6, 6.69e4, 38, 110, 401, kAbs, kAbs, kAbs},
      {"st", "embench", 1.47e5, 2.31e2, kNa, kNa, 2, kAbs, kAbs, kAbs},
      {"statemate", "embench", 3.22e6, 2.75e4, kNa, kNa, 129, kAbs, kAbs, kAbs},
      {"ud", "embench", 1.87e6, 2.98e3, kNa, kNa, kNa, 12, 18, 43},
      {"wikisort", "embench", 4.38e5, 7.69e3, 94, 158, 418, kAbs, kAbs, kAbs},
      {"dhrystone", "riscv-tests", 4.57e5, 2.25e4, 260, 452, 1215, 360, 553, 1318},
      {"median", "riscv-tests", 2.53e4, 1.10e1, kNa, kNa, kNa, 3, 5, 12},
      {"memcpy", "riscv-tests", 1.20e5, 1.10e1, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"mm", "riscv-tests", 1.41e6, 2.33e5, 1108, 1752, 4311, kAbs, kAbs, kAbs},
      {"mt-matmul", "riscv-tests", 5.76e4, 2.38e2, 11, 22, 65, kAbs, kAbs, kAbs},
      {"mt-memcpy", "riscv-tests", 4.08e5, 1.80e1, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"mt-vvadd", "riscv-tests", 1.48e5, 3.30e1, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"multiply", "riscv-tests", 3.72e4, 9.00e0, kNa, kNa, kNa, 2, 3, 6},
      {"pmp", "riscv-tests", 9.01e5, 5.90e1, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"qsort", "riscv-tests", 2.68e5, 1.10e1, kNa, kNa, kNa, kNa, kNa, 1},
      {"rsort", "riscv-tests", 3.32e5, 1.10e1, kNa, kNa, kNa, kNa, kNa, 1},
      {"spmv", "riscv-tests", 1.67e5, 1.10e1, kNa, kNa, kNa, kAbs, kAbs, kAbs},
      {"towers", "riscv-tests", 2.01e4, 9.00e0, kNa, kNa, kNa, kAbs, kAbs, kAbs},
  };
  return rows;
}

const BenchmarkStats* find_benchmark(std::string_view name) {
  for (const BenchmarkStats& stats : benchmark_table()) {
    if (stats.name == name) {
      return &stats;
    }
  }
  return nullptr;
}

std::vector<sim::Cycle> synthesize_cf_cycles(const BenchmarkStats& stats,
                                             const TraceParams& params,
                                             std::uint64_t seed) {
  (void)seed;  // Placement is deterministic; seed reserved for jitter studies.
  const auto total = static_cast<std::uint64_t>(stats.cycles);
  const auto cf_count = static_cast<std::uint64_t>(stats.cf_count);
  std::vector<sim::Cycle> cycles;
  cycles.reserve(cf_count);
  if (cf_count == 0 || total == 0) {
    return cycles;
  }

  const unsigned cluster = std::max(1u, params.cluster);
  const std::uint64_t clusters = (cf_count + cluster - 1) / cluster;
  const double window =
      std::max(1.0, params.window_fraction * stats.cycles);
  const double spacing = window / static_cast<double>(clusters);
  // Centre the active window in the run.
  const double offset = (stats.cycles - window) / 2.0;

  for (std::uint64_t c = 0; c < clusters && cycles.size() < cf_count; ++c) {
    const double base = offset + spacing * static_cast<double>(c);
    for (unsigned j = 0; j < cluster && cycles.size() < cf_count; ++j) {
      const double at = base + static_cast<double>(j) * params.intra_gap;
      cycles.push_back(static_cast<sim::Cycle>(std::min(
          std::max(at, 0.0), stats.cycles - 1.0)));
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

namespace {

double predict_slowdown(const BenchmarkStats& stats, const TraceParams& params,
                        std::uint32_t latency, std::size_t queue_depth) {
  const auto cf = synthesize_cf_cycles(stats, params);
  cfi::OverheadConfig config;
  config.queue_depth = queue_depth;
  config.check_latency = latency;
  config.transport_cycles = 0;
  const auto result = cfi::simulate_cf_cycles(
      cf, static_cast<sim::Cycle>(stats.cycles), config);
  return result.slowdown_percent();
}

/// Bisect the window fraction so the depth-8 IRQ prediction matches the
/// published Table III IRQ value (monotone non-increasing in phi).
void fit_phi(const BenchmarkStats& stats, TraceParams& params) {
  if (stats.paper_irq <= 0) {
    params.window_fraction = 1.0;
    return;
  }
  double lo = 1e-4;
  double hi = 1.0;
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = 0.5 * (lo + hi);
    params.window_fraction = mid;
    if (predict_slowdown(stats, params, kIrqLatency, 8) > stats.paper_irq) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  params.window_fraction = 0.5 * (lo + hi);
}

}  // namespace

TraceParams calibrate(const BenchmarkStats& stats) {
  TraceParams params;
  params.cluster = 2;
  fit_phi(stats, params);

  // --- Fit the burst size -----------------------------------------------------
  // Preferred target: Table II's IRQ column (queue depth 1) — an entirely
  // separate experiment.  For benchmarks absent from Table II, fall back to
  // the Polling column of Table III, leaving Optimized as the untouched
  // cross-validation column (see EXPERIMENTS.md).
  const bool have_t2 = stats.in_table2() && stats.paper2_irq > 0;
  const bool have_poll = stats.paper_poll > 0;
  if (have_t2 || have_poll) {
    double best_error = 1e18;
    unsigned best_cluster = params.cluster;
    // Bursts longer than the 8-entry CFI Queue are what make the Polling /
    // Optimized firmware visible at depth 8, so the grid extends well past
    // the queue depth (deep call ladders are common in real traces).
    for (const unsigned k : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u,
                             64u, 96u, 128u}) {
      // A Table III "-" entry means the 8-deep queue absorbs every burst, so
      // bursts cannot be longer than the queue for those benchmarks.
      if (stats.paper_irq <= 0 && k > 8) {
        continue;
      }
      TraceParams trial = params;
      trial.cluster = k;
      fit_phi(stats, trial);  // keep the IRQ column matched for every k
      const double predicted =
          have_t2 ? predict_slowdown(stats, trial, kIrqLatency, 1)
                  : predict_slowdown(stats, trial, kPollingLatency, 8);
      const double target = have_t2 ? stats.paper2_irq : stats.paper_poll;
      const double error = std::abs(predicted - target);
      if (error < best_error) {
        best_error = error;
        best_cluster = k;
      }
    }
    params.cluster = best_cluster;
    fit_phi(stats, params);
  }
  return params;
}

}  // namespace titan::workloads

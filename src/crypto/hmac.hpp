// HMAC-SHA256 (RFC 2104), the MAC TitanCFI uses to authenticate CFI metadata
// before spilling it outside the RoT (paper Sec. V-B / VI, "inspired by
// Zipper Stack").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace titan::crypto {

using Key = std::vector<std::uint8_t>;

/// A key with precomputed ipad/opad SHA-256 midstates (the classic HMAC
/// optimisation, and what OpenTitan's HMAC block does when the key register
/// is left loaded).  Construction costs the two pad compressions once; each
/// mac() then costs two compression call sites instead of four, which is
/// what makes per-commit-log authentication cheap.
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(std::span<const std::uint8_t> key);

  [[nodiscard]] Digest mac(std::span<const std::uint8_t> message) const;

 private:
  Sha256State inner_mid_{};
  Sha256State outer_mid_{};
};

/// One-shot HMAC-SHA256.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Constant-time digest comparison (the RoT firmware must not leak a timing
/// oracle when verifying a restored shadow-stack segment).
[[nodiscard]] bool digest_equal(const Digest& a, const Digest& b);

}  // namespace titan::crypto

// HMAC-SHA256 (RFC 2104), the MAC TitanCFI uses to authenticate CFI metadata
// before spilling it outside the RoT (paper Sec. V-B / VI, "inspired by
// Zipper Stack").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace titan::crypto {

using Key = std::vector<std::uint8_t>;

/// One-shot HMAC-SHA256.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Constant-time digest comparison (the RoT firmware must not leak a timing
/// oracle when verifying a restored shadow-stack segment).
[[nodiscard]] bool digest_equal(const Digest& a, const Digest& b);

}  // namespace titan::crypto

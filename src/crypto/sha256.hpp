// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Models the hash primitive inside OpenTitan's HMAC hardware block, which
// TitanCFI uses to authenticate shadow-stack segments spilled from the RoT
// private scratchpad to (untrusted) SoC main memory (paper Sec. VI).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace titan::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// The eight 32-bit words of SHA-256 compression state — a resumable
/// midstate when captured at a 64-byte block boundary.
using Sha256State = std::array<std::uint32_t, 8>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finalise and return the digest.  The object must be reset() before reuse.
  Digest finish();

  /// Resume hashing from a midstate captured after `bytes_consumed` bytes
  /// (must be a multiple of the 64-byte block size).  This is what lets
  /// HMAC precompute its ipad/opad blocks once per key.
  void seed(const Sha256State& midstate, std::uint64_t bytes_consumed);

  /// Snapshot the compression state.  Only meaningful at a block boundary
  /// (asserted): partial buffered input is not part of the state.
  [[nodiscard]] const Sha256State& midstate() const;

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// Hex rendering for test vectors and reports.
[[nodiscard]] std::string to_hex(const Digest& digest);

}  // namespace titan::crypto

// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Models the hash primitive inside OpenTitan's HMAC hardware block, which
// TitanCFI uses to authenticate shadow-stack segments spilled from the RoT
// private scratchpad to (untrusted) SoC main memory (paper Sec. VI).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace titan::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finalise and return the digest.  The object must be reset() before reuse.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// Hex rendering for test vectors and reports.
[[nodiscard]] std::string to_hex(const Digest& digest);

}  // namespace titan::crypto

// Accelerator-style front-end over the HMAC primitive, with the cycle-cost
// model of OpenTitan's HMAC block.
//
// The firmware does not hash byte-by-byte in software: it hands a buffer to
// the accelerator and pays a fixed setup cost plus a per-block cost.  The
// constants below follow the OpenTitan HMAC HWIP datasheet shape (one
// SHA-256 compression round per cycle, 80-cycle digest latency) — exact
// values are configurable because Table I/III only depend on them through
// the (rare) spill path.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/hmac.hpp"

namespace titan::crypto {

struct HmacAccelConfig {
  std::uint32_t setup_cycles = 24;      ///< Key load + start command (MMIO).
  std::uint32_t cycles_per_block = 80;  ///< One 64-byte SHA-256 block.
  std::uint32_t digest_cycles = 40;     ///< Finalisation + digest readout.
};

/// Request/response model of the HMAC accelerator: compute the MAC and
/// report how many accelerator cycles it costs.
class HmacAccel {
 public:
  explicit HmacAccel(HmacAccelConfig config = {}) : config_(config) {}

  struct Result {
    Digest digest{};
    std::uint64_t cycles = 0;
  };

  [[nodiscard]] Result mac(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) const {
    return mac(HmacKey(key), message);
  }

  /// MAC with a pre-loaded key (ipad/opad midstates already computed).  The
  /// modelled cycle cost is unchanged — the hardware pipeline hides the pad
  /// blocks either way — but the host-side simulation skips two SHA-256
  /// compressions per call.
  [[nodiscard]] Result mac(const HmacKey& key,
                           std::span<const std::uint8_t> message) const {
    Result result;
    result.digest = key.mac(message);
    // HMAC hashes (ipad || message) then (opad || inner): two extra blocks.
    const std::uint64_t blocks = (message.size() + 63) / 64 + 2;
    result.cycles = config_.setup_cycles +
                    blocks * config_.cycles_per_block + config_.digest_cycles;
    return result;
  }

  [[nodiscard]] const HmacAccelConfig& config() const { return config_; }

  /// Total accelerator cycles consumed since construction (for reports).
  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }

  /// mac() + accounting, for components that track accelerator usage.
  Result mac_accounted(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> message) {
    Result result = mac(key, message);
    total_cycles_ += result.cycles;
    ++invocations_;
    return result;
  }

  Result mac_accounted(const HmacKey& key,
                       std::span<const std::uint8_t> message) {
    Result result = mac(key, message);
    total_cycles_ += result.cycles;
    ++invocations_;
    return result;
  }

  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

  /// Checkpoint support: overwrite the usage counters with captured values
  /// (the owning MMIO block serializes them alongside its own state).
  void restore_usage(std::uint64_t total_cycles, std::uint64_t invocations) {
    total_cycles_ = total_cycles;
    invocations_ = invocations;
  }

 private:
  HmacAccelConfig config_;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t invocations_ = 0;
};

}  // namespace titan::crypto

#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>

namespace titan::crypto {

HmacKey::HmacKey(std::span<const std::uint8_t> key) {
  constexpr std::size_t kBlockSize = 64;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> pad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = key_block[i] ^ 0x36;
  }
  Sha256 inner;
  inner.update(pad);
  inner_mid_ = inner.midstate();

  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = key_block[i] ^ 0x5c;
  }
  Sha256 outer;
  outer.update(pad);
  outer_mid_ = outer.midstate();
}

Digest HmacKey::mac(std::span<const std::uint8_t> message) const {
  Sha256 inner;
  inner.seed(inner_mid_, 64);
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.seed(outer_mid_, 64);
  outer.update(inner_digest);
  return outer.finish();
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  return HmacKey(key).mac(message);
}

bool digest_equal(const Digest& a, const Digest& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

}  // namespace titan::crypto

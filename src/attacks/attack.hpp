// Registry-driven attack corpus: seeded, deterministic control-flow hijacks.
//
// An AttackPlan names one hijack woven into a fixed six-function scaffold
// program: the kind of corruption (ROP chain, JOP table corruption, stack
// pivot, return-to-register, partial return-address overwrite), the scaffold
// function it strikes (`site`), a kind-specific parameter (chain length,
// corrupted slot, overwritten byte count), and a seed that diversifies the
// benign scaffold bodies.  Plans follow the sim::FaultPlan conventions: a
// compact textual grammar (`kind@site#param,seed`) that round-trips through
// serialize()/parse() and embeds in the scenario fingerprint, and a seeded
// random() generator for fuzz harnesses.
//
// generate() synthesizes the adversarial image over rv::Assembler and
// returns, alongside the machine code, the exact PCs of the hijacked
// control-flow instructions (consumed by cfi::AttackTracker to score
// detection latency and false negatives) and the program's legitimate
// indirect-branch targets (provisioned into the RoT jump table when the
// forward-edge policy is armed — the table must be non-empty to enforce).
//
// Every attack architecturally "succeeds" on a bare core: the program exits
// with code 66 through the planted gadget.  What the corpus scores is whether
// and how fast the CFI pipeline flags the hijacked edge.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rv/assembler.hpp"

namespace titan::attacks {

/// Hijack techniques the generator can synthesize.
enum class AttackKind : unsigned {
  kRop = 0,   ///< ROP chain of `param` hijacked returns through pop-ret
              ///< gadgets planted above the victim frame.
  kJop,       ///< Corrupted slot `param` of a 4-entry function-pointer table
              ///< redirects an indirect call into the gadget.
  kPivot,     ///< Stack pivot: sp is repointed at an attacker-filled chain of
              ///< `param` entries in scratch DRAM.
  kRetToReg,  ///< Epilogue `ret` replaced by `jr` through a register — a
              ///< forward-edge escape the shadow stack alone cannot see.
  kPartialOverwrite,  ///< Only the low `param` (1-3) bytes of the saved
                      ///< return address are overwritten.
};
inline constexpr std::size_t kAttackKindCount = 5;

/// Number of functions in the generated scaffold; `site` indexes into it.
inline constexpr unsigned kScaffoldFunctions = 6;

[[nodiscard]] std::string_view attack_kind_name(AttackKind kind);
[[nodiscard]] std::optional<AttackKind> attack_kind_from_name(
    std::string_view name);

/// One attack descriptor.  `param` is kind-specific:
///   kRop, kPivot        — chain length (hijacked returns), 1..16;
///   kJop                — corrupted table slot, 0..3;
///   kRetToReg           — unused (must be 0);
///   kPartialOverwrite   — overwritten bytes of the saved ra, 1..3.
/// `seed` varies the benign scaffold bodies; the attack shape is unchanged.
struct AttackPlan {
  AttackKind kind = AttackKind::kRop;
  unsigned site = 0;
  std::uint64_t param = 1;
  std::uint64_t seed = 0;

  /// Deterministic textual form, e.g. "rop@2#4,7" (`,seed` omitted when the
  /// seed is 0; `#param` kept whenever param or seed is nonzero so the
  /// grammar stays unambiguous).  Safe to embed in a scenario serialization.
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); throws std::invalid_argument on malformed text
  /// (unknown kind, bad numbers, out-of-range site/param, trailing junk).
  [[nodiscard]] static AttackPlan parse(std::string_view text);
  /// Seeded random plan: kind, site, and a kind-appropriate param drawn from
  /// sim::Rng(seed); the plan's own seed field is `seed`, so distinct seeds
  /// always yield distinct fingerprints while the same seed reproduces the
  /// exact plan.
  [[nodiscard]] static AttackPlan random(std::uint64_t seed);

  bool operator==(const AttackPlan&) const = default;
};

/// Throws std::invalid_argument when the plan is outside the generator's
/// domain (site or param range); parse() and generate() both enforce it.
void validate(const AttackPlan& plan);

/// Scored outcome of one attack run.  Deterministic (a pure function of
/// scenario + plan), so it participates in the cross-engine bit-exactness
/// checks exactly like sim::ResilienceStats.
struct AttackStats {
  /// Hijacked control-flow edges that retired on the host (committed into
  /// the CFI pipeline or dropped by a fail-open overflow).
  std::uint64_t hijacks_retired = 0;
  /// Hijacked edges the RoT flagged as violations.
  std::uint64_t hijacks_flagged = 0;
  /// Hijacked edges that retired unflagged: fail-open drops plus edges the
  /// armed policy cleared (e.g. a forward-edge hijack under a backward-edge-
  /// only policy).  A silent miss becomes a scored one.
  std::uint64_t false_negatives = 0;
  /// True once any hijacked edge was flagged.
  bool detected = false;
  /// Host cycles from the first flagged edge's retirement to its verdict.
  std::uint64_t detection_latency = 0;
  /// 0-based ordinal of the first flagged edge within the run's committed
  /// CFI event stream (engine-invariant, unlike any cycle number).
  std::uint64_t first_fault_ordinal = 0;

  bool operator==(const AttackStats&) const = default;
};

/// Generator output: the adversarial image plus the metadata the scoring and
/// enforcement layers need.
struct AttackImage {
  rv::Image image;
  /// PCs of the hijacked control-flow instructions, sorted ascending.  Every
  /// retirement of one of these is a hijacked edge.
  std::vector<std::uint64_t> hijack_pcs;
  /// Legitimate indirect-branch targets of the scaffold (function entries,
  /// plus the dispatch handlers for kJop), sorted ascending — the RoT
  /// jump-table contents when the forward-edge policy is enabled.
  std::vector<std::uint64_t> legit_targets;
};

/// Synthesize the attack image for `plan`.  Deterministic: the same plan
/// always produces identical bytes and metadata.
[[nodiscard]] AttackImage generate(const AttackPlan& plan);

}  // namespace titan::attacks

#include "attacks/attack.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <stdexcept>

#include "sim/rng.hpp"
#include "workloads/programs.hpp"

namespace titan::attacks {
namespace {

using rv::Assembler;
using rv::Reg;
using rv::Xlen;

constexpr std::array<std::string_view, kAttackKindCount> kKindNames = {
    "rop", "jop", "pivot", "ret2reg", "partial",
};

/// Scratch DRAM for attacker-controlled data, clear of every workload buffer
/// (matmul/crc/qsort/stats own 0x8010'0000–0x8016'FFFF at other offsets).
constexpr std::int64_t kPivotArea = 0x8015'8000;
constexpr std::int64_t kJopTable = 0x8015'4000;

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("attack plan: bad " + std::string(what) +
                                " '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

std::string_view attack_kind_name(AttackKind kind) {
  return kKindNames[static_cast<unsigned>(kind)];
}

std::optional<AttackKind> attack_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) {
      return static_cast<AttackKind>(i);
    }
  }
  return std::nullopt;
}

void validate(const AttackPlan& plan) {
  if (plan.site >= kScaffoldFunctions) {
    throw std::invalid_argument("attack plan: site " +
                                std::to_string(plan.site) + " out of range (" +
                                std::to_string(kScaffoldFunctions) +
                                " scaffold functions)");
  }
  switch (plan.kind) {
    case AttackKind::kRop:
    case AttackKind::kPivot:
      if (plan.param < 1 || plan.param > 16) {
        throw std::invalid_argument(
            "attack plan: chain length must be 1..16, got " +
            std::to_string(plan.param));
      }
      break;
    case AttackKind::kJop:
      if (plan.param > 3) {
        throw std::invalid_argument(
            "attack plan: jop slot must be 0..3, got " +
            std::to_string(plan.param));
      }
      break;
    case AttackKind::kRetToReg:
      if (plan.param != 0) {
        throw std::invalid_argument(
            "attack plan: ret2reg takes no param, got " +
            std::to_string(plan.param));
      }
      break;
    case AttackKind::kPartialOverwrite:
      if (plan.param < 1 || plan.param > 3) {
        throw std::invalid_argument(
            "attack plan: partial overwrite must cover 1..3 bytes, got " +
            std::to_string(plan.param));
      }
      break;
  }
}

std::string AttackPlan::serialize() const {
  std::string out(attack_kind_name(kind));
  out += '@';
  out += std::to_string(site);
  if (param != 0 || seed != 0) {
    out += '#';
    out += std::to_string(param);
  }
  if (seed != 0) {
    out += ',';
    out += std::to_string(seed);
  }
  return out;
}

AttackPlan AttackPlan::parse(std::string_view text) {
  const std::size_t at = text.find('@');
  if (at == std::string_view::npos) {
    throw std::invalid_argument("attack plan: missing '@site' in '" +
                                std::string(text) + "'");
  }
  const auto kind = attack_kind_from_name(text.substr(0, at));
  if (!kind) {
    throw std::invalid_argument("attack plan: unknown kind '" +
                                std::string(text.substr(0, at)) + "'");
  }
  AttackPlan plan;
  plan.kind = *kind;
  plan.param = 0;
  std::string_view rest = text.substr(at + 1);
  const std::size_t hash = rest.find('#');
  if (hash == std::string_view::npos) {
    plan.site = static_cast<unsigned>(parse_u64(rest, "site"));
  } else {
    plan.site = static_cast<unsigned>(parse_u64(rest.substr(0, hash), "site"));
    std::string_view tail = rest.substr(hash + 1);
    const std::size_t comma = tail.find(',');
    if (comma == std::string_view::npos) {
      plan.param = parse_u64(tail, "param");
    } else {
      plan.param = parse_u64(tail.substr(0, comma), "param");
      plan.seed = parse_u64(tail.substr(comma + 1), "seed");
    }
  }
  validate(plan);
  return plan;
}

AttackPlan AttackPlan::random(std::uint64_t seed) {
  sim::Rng rng(seed);
  AttackPlan plan;
  plan.kind = static_cast<AttackKind>(rng.uniform(0, kAttackKindCount - 1));
  plan.site = static_cast<unsigned>(rng.uniform(0, kScaffoldFunctions - 1));
  switch (plan.kind) {
    case AttackKind::kRop:
    case AttackKind::kPivot:
      plan.param = rng.uniform(1, 8);
      break;
    case AttackKind::kJop:
      plan.param = rng.uniform(0, 3);
      break;
    case AttackKind::kRetToReg:
      plan.param = 0;
      break;
    case AttackKind::kPartialOverwrite:
      plan.param = rng.uniform(1, 3);
      break;
  }
  // The plan's seed is the generator seed itself: random(s) is reproducible
  // from s alone and distinct seeds always serialize distinctly.
  plan.seed = seed;
  return plan;
}

AttackImage generate(const AttackPlan& plan) {
  validate(plan);
  sim::Rng body_rng(plan.seed);
  Assembler a(Xlen::k64, workloads::kProgramBase);

  std::vector<Assembler::Label> fn(kScaffoldFunctions);
  for (auto& label : fn) {
    label = a.new_label();
  }
  auto exit_gadget = a.new_label();
  // ROP/pivot chain hops: hop k for k < len-1 is a pop-ret gadget, the last
  // hop is the exit gadget.
  const auto chain_len = static_cast<unsigned>(plan.param);
  std::vector<Assembler::Label> gadgets;
  if (plan.kind == AttackKind::kRop || plan.kind == AttackKind::kPivot) {
    for (unsigned k = 0; k + 1 < chain_len; ++k) {
      gadgets.push_back(a.new_label());
    }
  }
  const auto hop = [&](unsigned k) {
    return k < gadgets.size() ? gadgets[k] : exit_gadget;
  };
  std::vector<Assembler::Label> handlers;
  if (plan.kind == AttackKind::kJop) {
    for (unsigned k = 0; k < 4; ++k) {
      handlers.push_back(a.new_label());
    }
  }
  auto leaf = a.new_label();           // kPartialOverwrite only
  auto partial_gadget = a.new_label();  // kPartialOverwrite only

  // Labels bound immediately before each hijacked CF instruction.
  std::vector<Assembler::Label> hijacks;

  // main: accumulate in s2, call the root, exit benignly (never reached —
  // every attack diverts into the exit gadget first).
  a.li(Reg::kSp, static_cast<std::int64_t>(workloads::kStackTop));
  a.li(Reg::kS2, 0);
  a.call(fn[0]);
  a.andi(Reg::kA0, Reg::kS2, 0xFF);
  a.ecall();

  const auto standard_epilogue = [&](bool hijacked_return) {
    a.ld(Reg::kRa, Reg::kSp, 8);
    a.addi(Reg::kSp, Reg::kSp, 16);
    if (hijacked_return) {
      hijacks.push_back(a.here());
    }
    a.ret();
  };

  for (unsigned i = 0; i < kScaffoldFunctions; ++i) {
    a.bind(fn[i]);
    a.addi(Reg::kSp, Reg::kSp, -16);
    a.sd(Reg::kRa, Reg::kSp, 8);
    // Seeded benign body: 1..3 ALU ops on the accumulator.  Bodies depend on
    // the seed only, never on the attack shape, so two plans differing only
    // in kind/site/param share identical benign code.
    const unsigned ops = static_cast<unsigned>(body_rng.uniform(1, 3));
    for (unsigned op = 0; op < ops; ++op) {
      const auto delta = static_cast<std::int32_t>(body_rng.uniform(1, 200));
      if (body_rng.chance(0.5)) {
        a.addi(Reg::kS2, Reg::kS2, delta);
      } else {
        a.xori(Reg::kS2, Reg::kS2, delta);
      }
    }
    // Chain call keeps every function reachable; the callee subtree returns
    // benignly before the weave corrupts anything.
    if (i + 1 < kScaffoldFunctions) {
      a.call(fn[i + 1]);
    }
    if (i != plan.site) {
      standard_epilogue(false);
      continue;
    }
    switch (plan.kind) {
      case AttackKind::kRop: {
        // Overwrite the saved ra with the first hop and plant the rest of
        // the chain above the frame where the pop-ret gadgets will walk it.
        a.la(Reg::kT0, hop(0));
        a.sd(Reg::kT0, Reg::kSp, 8);
        for (unsigned j = 0; j + 1 < chain_len; ++j) {
          a.la(Reg::kT1, hop(j + 1));
          a.sd(Reg::kT1, Reg::kSp,
               static_cast<std::int32_t>(16 + 8 * j));
        }
        standard_epilogue(true);
        break;
      }
      case AttackKind::kPivot: {
        // Fill scratch DRAM with the chain, then repoint sp at it and pop.
        a.li(Reg::kT2, kPivotArea);
        for (unsigned j = 0; j < chain_len; ++j) {
          a.la(Reg::kT1, hop(j));
          a.sd(Reg::kT1, Reg::kT2, static_cast<std::int32_t>(8 * j));
        }
        a.mv(Reg::kSp, Reg::kT2);
        a.ld(Reg::kRa, Reg::kSp, 0);
        a.addi(Reg::kSp, Reg::kSp, 8);
        hijacks.push_back(a.here());
        a.ret();
        break;
      }
      case AttackKind::kRetToReg: {
        // The epilogue's ret becomes an indirect jump through t2 — a
        // forward-edge escape the backward-edge shadow stack never sees.
        // (t2 deliberately: `jalr x0, 0(ra|t0)` is the RISC-V return hint
        // and would be shadow-stack-checked as a return.)
        a.la(Reg::kT2, exit_gadget);
        a.ld(Reg::kRa, Reg::kSp, 8);
        a.addi(Reg::kSp, Reg::kSp, 16);
        hijacks.push_back(a.here());
        a.jr(Reg::kT2);
        break;
      }
      case AttackKind::kJop: {
        // Function-pointer dispatch with one corrupted slot.  The dispatch
        // is unrolled so the hijacked indirect call has its own PC.
        a.li(Reg::kS3, kJopTable);
        for (unsigned k = 0; k < 4; ++k) {
          a.la(Reg::kT1, k == plan.param ? exit_gadget : handlers[k]);
          a.sd(Reg::kT1, Reg::kS3, static_cast<std::int32_t>(8 * k));
        }
        for (unsigned k = 0; k < 4; ++k) {
          a.ld(Reg::kT2, Reg::kS3, static_cast<std::int32_t>(8 * k));
          if (k == plan.param) {
            hijacks.push_back(a.here());
          }
          a.callr(Reg::kT2);
        }
        standard_epilogue(false);  // dead: the corrupted slot never returns
        break;
      }
      case AttackKind::kPartialOverwrite: {
        // The 256-aligned block guarantees the call's return site and the
        // gadget share every byte above the low one, so overwriting 1-3 low
        // bytes of the saved ra retargets the return precisely.
        a.align(256);
        a.call(leaf);
        a.nop();
        a.bind(partial_gadget);
        a.addi(Reg::kS2, Reg::kS2, 9);
        a.li(Reg::kA0, 66);
        a.ecall();
        standard_epilogue(false);  // dead: leaf returns into the gadget
        break;
      }
    }
  }

  // Pop-ret gadgets: each consumes the next chain entry and returns into it.
  for (unsigned k = 0; k < gadgets.size(); ++k) {
    a.bind(gadgets[k]);
    a.addi(Reg::kS2, Reg::kS2, static_cast<std::int32_t>(2 * k + 1));
    a.ld(Reg::kRa, Reg::kSp, 0);
    a.addi(Reg::kSp, Reg::kSp, 8);
    hijacks.push_back(a.here());
    a.ret();
  }

  // Legitimate dispatch handlers (kJop): balanced call/return pairs.
  for (unsigned k = 0; k < handlers.size(); ++k) {
    a.bind(handlers[k]);
    a.addi(Reg::kS2, Reg::kS2, static_cast<std::int32_t>(k + 3));
    a.ret();
  }

  // The leaf whose saved return address gets partially overwritten.
  if (plan.kind == AttackKind::kPartialOverwrite) {
    a.bind(leaf);
    a.addi(Reg::kSp, Reg::kSp, -16);
    a.sd(Reg::kRa, Reg::kSp, 8);
    a.la(Reg::kT0, partial_gadget);
    a.sb(Reg::kT0, Reg::kSp, 8);
    if (plan.param >= 2) {
      a.srli(Reg::kT1, Reg::kT0, 8);
      a.sb(Reg::kT1, Reg::kSp, 9);
    }
    if (plan.param >= 3) {
      a.srli(Reg::kT1, Reg::kT0, 16);
      a.sb(Reg::kT1, Reg::kSp, 10);
    }
    a.ld(Reg::kRa, Reg::kSp, 8);
    a.addi(Reg::kSp, Reg::kSp, 16);
    hijacks.push_back(a.here());
    a.ret();
  }

  a.bind(exit_gadget);
  a.li(Reg::kA0, 66);
  a.ecall();

  AttackImage out;
  out.image = a.finish();
  out.hijack_pcs.reserve(hijacks.size());
  for (const auto& label : hijacks) {
    out.hijack_pcs.push_back(a.addr_of(label));
  }
  std::sort(out.hijack_pcs.begin(), out.hijack_pcs.end());
  for (const auto& label : fn) {
    out.legit_targets.push_back(a.addr_of(label));
  }
  for (const auto& label : handlers) {
    out.legit_targets.push_back(a.addr_of(label));
  }
  std::sort(out.legit_targets.begin(), out.legit_targets.end());
  return out;
}

}  // namespace titan::attacks

// Programmatic RISC-V assembler.
//
// Workload programs (RV64, run on the CVA6 model) and the CFI firmware
// (RV32, run on the Ibex model) are written in C++ against this builder —
// the repository needs no external cross-toolchain.  Labels support forward
// references; fixups are resolved at finish().
//
// Example:
//   Assembler a(Xlen::k64, 0x8000'0000);
//   auto loop = a.new_label();
//   a.li(Reg::kA0, 10);
//   a.bind(loop);
//   a.addi(Reg::kA0, Reg::kA0, -1);
//   a.bnez(Reg::kA0, loop);
//   a.ecall();
//   Image img = a.finish();
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "rv/isa.hpp"

namespace titan::rv {

/// Assembled machine code plus symbol information.
struct Image {
  std::uint64_t base = 0;
  std::vector<std::uint8_t> bytes;
  /// Named section marks (used e.g. to attribute Ibex PCs to IRQ vs CFI
  /// firmware regions).
  std::map<std::string, std::uint64_t> marks;

  [[nodiscard]] std::uint64_t end() const { return base + bytes.size(); }
};

class Assembler {
 public:
  struct Label {
    std::uint32_t id = 0;
  };

  Assembler(Xlen xlen, std::uint64_t base) : xlen_(xlen), base_(base) {}

  // ---- Labels & layout -----------------------------------------------------

  Label new_label();
  void bind(Label label);
  /// Create a label already bound at the current position.
  Label here();
  /// Record a named mark at the current position (section boundaries).
  void mark(const std::string& name);
  /// Address a bound label resolves to.  Throws if unbound.
  [[nodiscard]] std::uint64_t addr_of(Label label) const;
  [[nodiscard]] std::uint64_t pc() const { return base_ + bytes_.size(); }
  [[nodiscard]] std::uint64_t base() const { return base_; }

  /// Pad with canonical NOPs until `pc() % alignment == 0` (alignment must be
  /// a multiple of 4).
  void align(std::uint64_t alignment);

  // ---- Raw emission ---------------------------------------------------------

  void word(std::uint32_t value);      ///< Emit a raw 32-bit word.
  void half(std::uint16_t value);      ///< Emit a raw 16-bit word (RVC).
  void data64(std::uint64_t value);    ///< Emit 8 bytes of data.
  void zero_bytes(std::size_t count);  ///< Emit zero-filled data.

  // ---- RV32I / RV64I --------------------------------------------------------

  void lui(Reg rd, std::int64_t imm);    ///< imm: value with low 12 bits zero.
  void auipc(Reg rd, std::int64_t imm);
  void jal(Reg rd, Label target);
  void jalr(Reg rd, Reg rs1, std::int32_t offset);

  void beq(Reg rs1, Reg rs2, Label target);
  void bne(Reg rs1, Reg rs2, Label target);
  void blt(Reg rs1, Reg rs2, Label target);
  void bge(Reg rs1, Reg rs2, Label target);
  void bltu(Reg rs1, Reg rs2, Label target);
  void bgeu(Reg rs1, Reg rs2, Label target);

  void lb(Reg rd, Reg rs1, std::int32_t offset);
  void lh(Reg rd, Reg rs1, std::int32_t offset);
  void lw(Reg rd, Reg rs1, std::int32_t offset);
  void lbu(Reg rd, Reg rs1, std::int32_t offset);
  void lhu(Reg rd, Reg rs1, std::int32_t offset);
  void lwu(Reg rd, Reg rs1, std::int32_t offset);
  void ld(Reg rd, Reg rs1, std::int32_t offset);
  void sb(Reg rs2, Reg rs1, std::int32_t offset);
  void sh(Reg rs2, Reg rs1, std::int32_t offset);
  void sw(Reg rs2, Reg rs1, std::int32_t offset);
  void sd(Reg rs2, Reg rs1, std::int32_t offset);

  void addi(Reg rd, Reg rs1, std::int32_t imm);
  void slti(Reg rd, Reg rs1, std::int32_t imm);
  void sltiu(Reg rd, Reg rs1, std::int32_t imm);
  void xori(Reg rd, Reg rs1, std::int32_t imm);
  void ori(Reg rd, Reg rs1, std::int32_t imm);
  void andi(Reg rd, Reg rs1, std::int32_t imm);
  void slli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srai(Reg rd, Reg rs1, std::uint32_t shamt);

  void add(Reg rd, Reg rs1, Reg rs2);
  void sub(Reg rd, Reg rs1, Reg rs2);
  void sll(Reg rd, Reg rs1, Reg rs2);
  void slt(Reg rd, Reg rs1, Reg rs2);
  void sltu(Reg rd, Reg rs1, Reg rs2);
  void xor_(Reg rd, Reg rs1, Reg rs2);
  void srl(Reg rd, Reg rs1, Reg rs2);
  void sra(Reg rd, Reg rs1, Reg rs2);
  void or_(Reg rd, Reg rs1, Reg rs2);
  void and_(Reg rd, Reg rs1, Reg rs2);

  // RV64-only word forms.
  void addiw(Reg rd, Reg rs1, std::int32_t imm);
  void slliw(Reg rd, Reg rs1, std::uint32_t shamt);
  void srliw(Reg rd, Reg rs1, std::uint32_t shamt);
  void sraiw(Reg rd, Reg rs1, std::uint32_t shamt);
  void addw(Reg rd, Reg rs1, Reg rs2);
  void subw(Reg rd, Reg rs1, Reg rs2);
  void sllw(Reg rd, Reg rs1, Reg rs2);
  void srlw(Reg rd, Reg rs1, Reg rs2);
  void sraw(Reg rd, Reg rs1, Reg rs2);

  void fence();
  void ecall();
  void ebreak();
  void mret();
  void wfi();

  // Zicsr.
  void csrrw(Reg rd, std::uint32_t csr_num, Reg rs1);
  void csrrs(Reg rd, std::uint32_t csr_num, Reg rs1);
  void csrrc(Reg rd, std::uint32_t csr_num, Reg rs1);
  void csrrwi(Reg rd, std::uint32_t csr_num, std::uint8_t zimm);
  void csrrsi(Reg rd, std::uint32_t csr_num, std::uint8_t zimm);
  void csrrci(Reg rd, std::uint32_t csr_num, std::uint8_t zimm);

  // M extension.
  void mul(Reg rd, Reg rs1, Reg rs2);
  void mulh(Reg rd, Reg rs1, Reg rs2);
  void mulhsu(Reg rd, Reg rs1, Reg rs2);
  void mulhu(Reg rd, Reg rs1, Reg rs2);
  void div(Reg rd, Reg rs1, Reg rs2);
  void divu(Reg rd, Reg rs1, Reg rs2);
  void rem(Reg rd, Reg rs1, Reg rs2);
  void remu(Reg rd, Reg rs1, Reg rs2);
  void mulw(Reg rd, Reg rs1, Reg rs2);
  void divw(Reg rd, Reg rs1, Reg rs2);
  void remw(Reg rd, Reg rs1, Reg rs2);

  // ---- Pseudo-instructions --------------------------------------------------

  void nop();
  void mv(Reg rd, Reg rs);
  void not_(Reg rd, Reg rs);
  void neg(Reg rd, Reg rs);
  void seqz(Reg rd, Reg rs);
  void snez(Reg rd, Reg rs);
  /// Load an arbitrary constant (expands to the shortest lui/addi[w]/slli
  /// sequence for the configured XLEN).
  void li(Reg rd, std::int64_t value);
  /// Load the address of a label (auipc + addi pair, PC-relative).
  void la(Reg rd, Label target);
  void j(Label target);
  /// Near call: jal ra, target.
  void call(Label target);
  /// Indirect call through a register: jalr ra, 0(rs).
  void callr(Reg rs);
  void ret();
  /// Indirect jump (no link): jalr x0, 0(rs).
  void jr(Reg rs);
  void beqz(Reg rs, Label target);
  void bnez(Reg rs, Label target);
  void bgez(Reg rs, Label target);
  void bltz(Reg rs, Label target);

  // ---- Finalisation ----------------------------------------------------------

  /// Resolve all fixups and return the image.  Throws std::logic_error on
  /// unbound labels and std::out_of_range on branch targets out of reach.
  Image finish();

  /// Number of instruction/data bytes emitted so far.
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  enum class FixupKind { kBranch, kJal, kAuipcPair };

  struct Fixup {
    std::size_t offset = 0;
    std::uint32_t label_id = 0;
    FixupKind kind = FixupKind::kBranch;
  };

  void emit(std::uint32_t word);
  void branch(std::uint32_t funct3, Reg rs1, Reg rs2, Label target);
  [[nodiscard]] std::uint32_t read_word(std::size_t offset) const;
  void patch_word(std::size_t offset, std::uint32_t word);

  Xlen xlen_;
  std::uint64_t base_;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::int64_t> label_addrs_;  ///< -1 when unbound.
  std::vector<Fixup> fixups_;
  std::map<std::string, std::uint64_t> marks_;
};

}  // namespace titan::rv

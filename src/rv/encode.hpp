// RISC-V instruction encoders: the six base formats plus per-mnemonic
// convenience wrappers used by the assembler and by encode/decode round-trip
// property tests.
#pragma once

#include <cstdint>

#include "rv/isa.hpp"

namespace titan::rv {

// ---- Base format encoders -------------------------------------------------
// Immediates are passed already shifted as the ISA spec writes them
// (B/J immediates are byte offsets with bit 0 implicitly zero).

std::uint32_t enc_r(std::uint32_t opcode, std::uint32_t funct3,
                    std::uint32_t funct7, std::uint8_t rd, std::uint8_t rs1,
                    std::uint8_t rs2);
std::uint32_t enc_i(std::uint32_t opcode, std::uint32_t funct3, std::uint8_t rd,
                    std::uint8_t rs1, std::int32_t imm12);
std::uint32_t enc_s(std::uint32_t opcode, std::uint32_t funct3,
                    std::uint8_t rs1, std::uint8_t rs2, std::int32_t imm12);
std::uint32_t enc_b(std::uint32_t opcode, std::uint32_t funct3,
                    std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset13);
std::uint32_t enc_u(std::uint32_t opcode, std::uint8_t rd, std::int64_t imm32);
std::uint32_t enc_j(std::uint32_t opcode, std::uint8_t rd, std::int32_t offset21);

/// Encode a decoded instruction back into its canonical 32-bit form.
/// Inverse of decode() for every op the decoder produces (always emits the
/// uncompressed encoding).
std::uint32_t encode(const Inst& inst);

}  // namespace titan::rv

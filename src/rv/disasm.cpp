#include "rv/disasm.hpp"

#include <array>
#include <sstream>

namespace titan::rv {

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kIllegal: return "illegal";
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kLwu: return "lwu";
    case Op::kLd: return "ld";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kSd: return "sd";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kAddiw: return "addiw";
    case Op::kSlliw: return "slliw";
    case Op::kSrliw: return "srliw";
    case Op::kSraiw: return "sraiw";
    case Op::kAddw: return "addw";
    case Op::kSubw: return "subw";
    case Op::kSllw: return "sllw";
    case Op::kSrlw: return "srlw";
    case Op::kSraw: return "sraw";
    case Op::kFence: return "fence";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kMret: return "mret";
    case Op::kWfi: return "wfi";
    case Op::kCsrrw: return "csrrw";
    case Op::kCsrrs: return "csrrs";
    case Op::kCsrrc: return "csrrc";
    case Op::kCsrrwi: return "csrrwi";
    case Op::kCsrrsi: return "csrrsi";
    case Op::kCsrrci: return "csrrci";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kMulhsu: return "mulhsu";
    case Op::kMulhu: return "mulhu";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kRem: return "rem";
    case Op::kRemu: return "remu";
    case Op::kMulw: return "mulw";
    case Op::kDivw: return "divw";
    case Op::kDivuw: return "divuw";
    case Op::kRemw: return "remw";
    case Op::kRemuw: return "remuw";
  }
  return "?";
}

std::string_view reg_name(std::uint8_t reg) {
  static constexpr std::array<std::string_view, 32> kNames = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return reg < kNames.size() ? kNames[reg] : "x?";
}

namespace {

enum class Fmt { kNone, kRType, kIType, kLoad, kStore, kBranch, kUType, kJType, kShift, kCsr, kCsrImm };

Fmt format_of(Op op) {
  switch (op) {
    case Op::kLui:
    case Op::kAuipc:
      return Fmt::kUType;
    case Op::kJal:
      return Fmt::kJType;
    case Op::kJalr:
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLwu:
    case Op::kLd:
      return Fmt::kLoad;
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kSd:
      return Fmt::kStore;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return Fmt::kBranch;
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kAddiw:
      return Fmt::kIType;
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
    case Op::kSlliw:
    case Op::kSrliw:
    case Op::kSraiw:
      return Fmt::kShift;
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
      return Fmt::kCsr;
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
      return Fmt::kCsrImm;
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
    case Op::kWfi:
    case Op::kIllegal:
      return Fmt::kNone;
    default:
      return Fmt::kRType;
  }
}

}  // namespace

std::string disasm(const Inst& i) {
  std::ostringstream os;
  os << mnemonic(i.op);
  switch (format_of(i.op)) {
    case Fmt::kNone:
      break;
    case Fmt::kRType:
      os << " " << reg_name(i.rd) << ", " << reg_name(i.rs1) << ", "
         << reg_name(i.rs2);
      break;
    case Fmt::kIType:
    case Fmt::kShift:
      os << " " << reg_name(i.rd) << ", " << reg_name(i.rs1) << ", " << i.imm;
      break;
    case Fmt::kLoad:
      os << " " << reg_name(i.rd) << ", " << i.imm << "(" << reg_name(i.rs1)
         << ")";
      break;
    case Fmt::kStore:
      os << " " << reg_name(i.rs2) << ", " << i.imm << "(" << reg_name(i.rs1)
         << ")";
      break;
    case Fmt::kBranch:
      os << " " << reg_name(i.rs1) << ", " << reg_name(i.rs2) << ", " << i.imm;
      break;
    case Fmt::kUType:
      os << " " << reg_name(i.rd) << ", 0x" << std::hex
         << ((static_cast<std::uint64_t>(i.imm) >> 12) & 0xFFFFF);
      break;
    case Fmt::kJType:
      os << " " << reg_name(i.rd) << ", " << i.imm;
      break;
    case Fmt::kCsr:
      os << " " << reg_name(i.rd) << ", 0x" << std::hex << i.imm << std::dec
         << ", " << reg_name(i.rs1);
      break;
    case Fmt::kCsrImm:
      os << " " << reg_name(i.rd) << ", 0x" << std::hex << i.imm << std::dec
         << ", " << static_cast<int>(i.rs1);
      break;
  }
  return os.str();
}

}  // namespace titan::rv

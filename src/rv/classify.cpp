#include "rv/isa.hpp"

namespace titan::rv {

namespace {

// RISC-V ABI link registers: ra (x1) and the alternate link register t0 (x5).
// The calling-convention hint in the ISA manual (Table 2.1, "JALR/JAL rd/rs1
// hints") is exactly what a binary-only CFI filter like TitanCFI's must rely
// on, since it sees retired instructions, not compiler metadata.
bool is_link_reg(std::uint8_t reg) { return reg == 1 || reg == 5; }

}  // namespace

CfKind classify(const Inst& inst) {
  switch (inst.op) {
    case Op::kJal:
      return is_link_reg(inst.rd) ? CfKind::kCall : CfKind::kDirectJump;
    case Op::kJalr:
      if (is_link_reg(inst.rd)) {
        return CfKind::kCall;
      }
      if (inst.rd == 0 && is_link_reg(inst.rs1)) {
        return CfKind::kReturn;
      }
      return CfKind::kIndirectJump;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return CfKind::kBranch;
    default:
      return CfKind::kNone;
  }
}

}  // namespace titan::rv

// RISC-V ISA model: operations, registers, decoded-instruction record, and
// ABI-aware control-flow classification.
//
// Covers RV32IMC / RV64IMC + Zicsr + machine-mode system instructions, which
// is the instruction surface of both cores in the TitanCFI SoC (CVA6 host is
// RV64GC but no workload in this repository needs F/D/A; Ibex is RV32IMC).
#pragma once

#include <cstdint>
#include <string_view>

namespace titan::rv {

enum class Xlen { k32, k64 };

/// Architectural integer registers (ABI names).
enum class Reg : std::uint8_t {
  kZero = 0, kRa = 1, kSp = 2, kGp = 3, kTp = 4,
  kT0 = 5, kT1 = 6, kT2 = 7,
  kS0 = 8, kS1 = 9,
  kA0 = 10, kA1 = 11, kA2 = 12, kA3 = 13, kA4 = 14, kA5 = 15, kA6 = 16, kA7 = 17,
  kS2 = 18, kS3 = 19, kS4 = 20, kS5 = 21, kS6 = 22, kS7 = 23, kS8 = 24,
  kS9 = 25, kS10 = 26, kS11 = 27,
  kT3 = 28, kT4 = 29, kT5 = 30, kT6 = 31,
};

inline constexpr std::uint8_t reg_num(Reg r) { return static_cast<std::uint8_t>(r); }

/// All operations the decoder can produce.
enum class Op : std::uint8_t {
  kIllegal,
  // RV32I / RV64I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu, kLwu, kLd,
  kSb, kSh, kSw, kSd,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kAddiw, kSlliw, kSrliw, kSraiw,
  kAddw, kSubw, kSllw, kSrlw, kSraw,
  kFence, kEcall, kEbreak, kMret, kWfi,
  // Zicsr
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // M extension
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kMulw, kDivw, kDivuw, kRemw, kRemuw,
};

/// A fully decoded instruction.
///
/// For CSR instructions `imm` holds the CSR number and, for the immediate
/// variants, `rs1` holds the 5-bit zimm.
struct Inst {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;
  std::uint32_t raw = 0;       ///< Original encoding (16-bit RVC in low half).
  std::uint32_t expanded = 0;  ///< Uncompressed 32-bit equivalent encoding.
  std::uint8_t len = 4;        ///< Instruction length in bytes (2 or 4).

  [[nodiscard]] bool valid() const { return op != Op::kIllegal; }
};

/// Control-flow taxonomy used by the CFI Filter (paper Sec. IV-B1):
/// calls, returns and indirect jumps must be checked; direct jumps and
/// conditional branches have statically-known targets and are not streamed.
enum class CfKind : std::uint8_t {
  kNone,          ///< Not a control-flow instruction.
  kCall,          ///< JAL/JALR with rd in {ra, t0} (RISC-V ABI link regs).
  kReturn,        ///< JALR rd=x0, rs1 in {ra, t0}.
  kIndirectJump,  ///< Other JALR (computed target, no link).
  kDirectJump,    ///< JAL rd=x0 (static target).
  kBranch,        ///< Conditional branch (static targets).
};

/// Classify a decoded instruction per the RISC-V ABI hint convention.
[[nodiscard]] CfKind classify(const Inst& inst);

/// True for the kinds the CFI Filter forwards to the RoT.
[[nodiscard]] inline bool cfi_relevant(CfKind kind) {
  return kind == CfKind::kCall || kind == CfKind::kReturn ||
         kind == CfKind::kIndirectJump;
}

/// Mnemonic for an operation ("addi", "c.jr" is not distinguished — RVC
/// instructions disassemble as their expanded form).
[[nodiscard]] std::string_view mnemonic(Op op);

/// ABI name for a register number ("ra", "sp", "a0", ...).
[[nodiscard]] std::string_view reg_name(std::uint8_t reg);

/// Commonly used CSR numbers (machine mode subset modelled by the cores).
namespace csr {
inline constexpr std::uint32_t kMstatus = 0x300;
inline constexpr std::uint32_t kMie = 0x304;
inline constexpr std::uint32_t kMtvec = 0x305;
inline constexpr std::uint32_t kMscratch = 0x340;
inline constexpr std::uint32_t kMepc = 0x341;
inline constexpr std::uint32_t kMcause = 0x342;
inline constexpr std::uint32_t kMtval = 0x343;
inline constexpr std::uint32_t kMip = 0x344;
inline constexpr std::uint32_t kMcycle = 0xB00;
inline constexpr std::uint32_t kMinstret = 0xB02;
inline constexpr std::uint32_t kMhartid = 0xF14;
}  // namespace csr

}  // namespace titan::rv

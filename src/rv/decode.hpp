// RISC-V decoder: 32-bit base encodings plus RVC (compressed) expansion.
#pragma once

#include <cstdint>
#include <optional>

#include "rv/isa.hpp"

namespace titan::rv {

/// Decode one instruction starting at the given raw fetch word.  If the low
/// two bits select a compressed encoding, only the low 16 bits are consumed
/// (len == 2) and the instruction is decoded through its 32-bit expansion,
/// which is stored in Inst::expanded — exactly the "uncompressed binary
/// encoding" the TitanCFI commit log carries (paper Sec. IV-B1).
[[nodiscard]] Inst decode(std::uint32_t raw, Xlen xlen);

/// Expand a 16-bit compressed instruction into its 32-bit equivalent.
/// Returns std::nullopt for reserved/illegal encodings.
[[nodiscard]] std::optional<std::uint32_t> expand_rvc(std::uint16_t half,
                                                      Xlen xlen);

}  // namespace titan::rv

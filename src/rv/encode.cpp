#include "rv/encode.hpp"

#include <stdexcept>

namespace titan::rv {

namespace {

std::uint32_t bits(std::int64_t value, int hi, int lo) {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(value) >> lo) &
                                    ((std::uint64_t{1} << (hi - lo + 1)) - 1));
}

}  // namespace

std::uint32_t enc_r(std::uint32_t opcode, std::uint32_t funct3,
                    std::uint32_t funct7, std::uint8_t rd, std::uint8_t rs1,
                    std::uint8_t rs2) {
  return opcode | (std::uint32_t{rd} << 7) | (funct3 << 12) |
         (std::uint32_t{rs1} << 15) | (std::uint32_t{rs2} << 20) |
         (funct7 << 25);
}

std::uint32_t enc_i(std::uint32_t opcode, std::uint32_t funct3, std::uint8_t rd,
                    std::uint8_t rs1, std::int32_t imm12) {
  return opcode | (std::uint32_t{rd} << 7) | (funct3 << 12) |
         (std::uint32_t{rs1} << 15) | (bits(imm12, 11, 0) << 20);
}

std::uint32_t enc_s(std::uint32_t opcode, std::uint32_t funct3,
                    std::uint8_t rs1, std::uint8_t rs2, std::int32_t imm12) {
  return opcode | (bits(imm12, 4, 0) << 7) | (funct3 << 12) |
         (std::uint32_t{rs1} << 15) | (std::uint32_t{rs2} << 20) |
         (bits(imm12, 11, 5) << 25);
}

std::uint32_t enc_b(std::uint32_t opcode, std::uint32_t funct3,
                    std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset13) {
  return opcode | (bits(offset13, 11, 11) << 7) | (bits(offset13, 4, 1) << 8) |
         (funct3 << 12) | (std::uint32_t{rs1} << 15) |
         (std::uint32_t{rs2} << 20) | (bits(offset13, 10, 5) << 25) |
         (bits(offset13, 12, 12) << 31);
}

std::uint32_t enc_u(std::uint32_t opcode, std::uint8_t rd, std::int64_t imm32) {
  return opcode | (std::uint32_t{rd} << 7) |
         (static_cast<std::uint32_t>(imm32) & 0xFFFFF000u);
}

std::uint32_t enc_j(std::uint32_t opcode, std::uint8_t rd, std::int32_t offset21) {
  return opcode | (std::uint32_t{rd} << 7) | (bits(offset21, 19, 12) << 12) |
         (bits(offset21, 11, 11) << 20) | (bits(offset21, 10, 1) << 21) |
         (bits(offset21, 20, 20) << 31);
}

namespace {

// Opcode majors.
constexpr std::uint32_t kOpLui = 0x37;
constexpr std::uint32_t kOpAuipc = 0x17;
constexpr std::uint32_t kOpJal = 0x6F;
constexpr std::uint32_t kOpJalr = 0x67;
constexpr std::uint32_t kOpBranch = 0x63;
constexpr std::uint32_t kOpLoad = 0x03;
constexpr std::uint32_t kOpStore = 0x23;
constexpr std::uint32_t kOpImm = 0x13;
constexpr std::uint32_t kOpImm32 = 0x1B;
constexpr std::uint32_t kOpReg = 0x33;
constexpr std::uint32_t kOpReg32 = 0x3B;
constexpr std::uint32_t kOpMisc = 0x0F;
constexpr std::uint32_t kOpSystem = 0x73;

}  // namespace

std::uint32_t encode(const Inst& i) {
  const auto imm32 = static_cast<std::int32_t>(i.imm);
  switch (i.op) {
    case Op::kLui:
      return enc_u(kOpLui, i.rd, i.imm);
    case Op::kAuipc:
      return enc_u(kOpAuipc, i.rd, i.imm);
    case Op::kJal:
      return enc_j(kOpJal, i.rd, imm32);
    case Op::kJalr:
      return enc_i(kOpJalr, 0, i.rd, i.rs1, imm32);
    case Op::kBeq:
      return enc_b(kOpBranch, 0, i.rs1, i.rs2, imm32);
    case Op::kBne:
      return enc_b(kOpBranch, 1, i.rs1, i.rs2, imm32);
    case Op::kBlt:
      return enc_b(kOpBranch, 4, i.rs1, i.rs2, imm32);
    case Op::kBge:
      return enc_b(kOpBranch, 5, i.rs1, i.rs2, imm32);
    case Op::kBltu:
      return enc_b(kOpBranch, 6, i.rs1, i.rs2, imm32);
    case Op::kBgeu:
      return enc_b(kOpBranch, 7, i.rs1, i.rs2, imm32);
    case Op::kLb:
      return enc_i(kOpLoad, 0, i.rd, i.rs1, imm32);
    case Op::kLh:
      return enc_i(kOpLoad, 1, i.rd, i.rs1, imm32);
    case Op::kLw:
      return enc_i(kOpLoad, 2, i.rd, i.rs1, imm32);
    case Op::kLd:
      return enc_i(kOpLoad, 3, i.rd, i.rs1, imm32);
    case Op::kLbu:
      return enc_i(kOpLoad, 4, i.rd, i.rs1, imm32);
    case Op::kLhu:
      return enc_i(kOpLoad, 5, i.rd, i.rs1, imm32);
    case Op::kLwu:
      return enc_i(kOpLoad, 6, i.rd, i.rs1, imm32);
    case Op::kSb:
      return enc_s(kOpStore, 0, i.rs1, i.rs2, imm32);
    case Op::kSh:
      return enc_s(kOpStore, 1, i.rs1, i.rs2, imm32);
    case Op::kSw:
      return enc_s(kOpStore, 2, i.rs1, i.rs2, imm32);
    case Op::kSd:
      return enc_s(kOpStore, 3, i.rs1, i.rs2, imm32);
    case Op::kAddi:
      return enc_i(kOpImm, 0, i.rd, i.rs1, imm32);
    case Op::kSlti:
      return enc_i(kOpImm, 2, i.rd, i.rs1, imm32);
    case Op::kSltiu:
      return enc_i(kOpImm, 3, i.rd, i.rs1, imm32);
    case Op::kXori:
      return enc_i(kOpImm, 4, i.rd, i.rs1, imm32);
    case Op::kOri:
      return enc_i(kOpImm, 6, i.rd, i.rs1, imm32);
    case Op::kAndi:
      return enc_i(kOpImm, 7, i.rd, i.rs1, imm32);
    case Op::kSlli:
      return enc_i(kOpImm, 1, i.rd, i.rs1, imm32 & 0x3F);
    case Op::kSrli:
      return enc_i(kOpImm, 5, i.rd, i.rs1, imm32 & 0x3F);
    case Op::kSrai:
      return enc_i(kOpImm, 5, i.rd, i.rs1, (imm32 & 0x3F) | 0x400);
    case Op::kAdd:
      return enc_r(kOpReg, 0, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSub:
      return enc_r(kOpReg, 0, 0x20, i.rd, i.rs1, i.rs2);
    case Op::kSll:
      return enc_r(kOpReg, 1, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSlt:
      return enc_r(kOpReg, 2, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSltu:
      return enc_r(kOpReg, 3, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kXor:
      return enc_r(kOpReg, 4, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSrl:
      return enc_r(kOpReg, 5, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSra:
      return enc_r(kOpReg, 5, 0x20, i.rd, i.rs1, i.rs2);
    case Op::kOr:
      return enc_r(kOpReg, 6, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kAnd:
      return enc_r(kOpReg, 7, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kAddiw:
      return enc_i(kOpImm32, 0, i.rd, i.rs1, imm32);
    case Op::kSlliw:
      return enc_i(kOpImm32, 1, i.rd, i.rs1, imm32 & 0x1F);
    case Op::kSrliw:
      return enc_i(kOpImm32, 5, i.rd, i.rs1, imm32 & 0x1F);
    case Op::kSraiw:
      return enc_i(kOpImm32, 5, i.rd, i.rs1, (imm32 & 0x1F) | 0x400);
    case Op::kAddw:
      return enc_r(kOpReg32, 0, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSubw:
      return enc_r(kOpReg32, 0, 0x20, i.rd, i.rs1, i.rs2);
    case Op::kSllw:
      return enc_r(kOpReg32, 1, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSrlw:
      return enc_r(kOpReg32, 5, 0x00, i.rd, i.rs1, i.rs2);
    case Op::kSraw:
      return enc_r(kOpReg32, 5, 0x20, i.rd, i.rs1, i.rs2);
    case Op::kFence:
      return enc_i(kOpMisc, 0, 0, 0, 0x0FF);
    case Op::kEcall:
      return 0x00000073;
    case Op::kEbreak:
      return 0x00100073;
    case Op::kMret:
      return 0x30200073;
    case Op::kWfi:
      return 0x10500073;
    case Op::kCsrrw:
      return enc_i(kOpSystem, 1, i.rd, i.rs1, imm32);
    case Op::kCsrrs:
      return enc_i(kOpSystem, 2, i.rd, i.rs1, imm32);
    case Op::kCsrrc:
      return enc_i(kOpSystem, 3, i.rd, i.rs1, imm32);
    case Op::kCsrrwi:
      return enc_i(kOpSystem, 5, i.rd, i.rs1, imm32);
    case Op::kCsrrsi:
      return enc_i(kOpSystem, 6, i.rd, i.rs1, imm32);
    case Op::kCsrrci:
      return enc_i(kOpSystem, 7, i.rd, i.rs1, imm32);
    case Op::kMul:
      return enc_r(kOpReg, 0, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kMulh:
      return enc_r(kOpReg, 1, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kMulhsu:
      return enc_r(kOpReg, 2, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kMulhu:
      return enc_r(kOpReg, 3, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kDiv:
      return enc_r(kOpReg, 4, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kDivu:
      return enc_r(kOpReg, 5, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kRem:
      return enc_r(kOpReg, 6, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kRemu:
      return enc_r(kOpReg, 7, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kMulw:
      return enc_r(kOpReg32, 0, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kDivw:
      return enc_r(kOpReg32, 4, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kDivuw:
      return enc_r(kOpReg32, 5, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kRemw:
      return enc_r(kOpReg32, 6, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kRemuw:
      return enc_r(kOpReg32, 7, 0x01, i.rd, i.rs1, i.rs2);
    case Op::kIllegal:
      break;
  }
  throw std::invalid_argument("encode: illegal instruction");
}

}  // namespace titan::rv

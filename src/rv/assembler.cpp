#include "rv/assembler.hpp"

#include <limits>
#include <string>

#include "rv/encode.hpp"

namespace titan::rv {

namespace {

constexpr std::uint32_t kOpLoad = 0x03;
constexpr std::uint32_t kOpStore = 0x23;
constexpr std::uint32_t kOpImm = 0x13;
constexpr std::uint32_t kOpImm32 = 0x1B;
constexpr std::uint32_t kOpReg = 0x33;
constexpr std::uint32_t kOpReg32 = 0x3B;
constexpr std::uint32_t kOpBranch = 0x63;
constexpr std::uint32_t kOpJalr = 0x67;
constexpr std::uint32_t kOpSystem = 0x73;

std::uint8_t n(Reg r) { return reg_num(r); }

bool fits_simm(std::int64_t value, int bits) {
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return value >= lo && value <= hi;
}

// Immediates must fit their field: silent truncation produces programs that
// assemble but compute garbage, so reject loudly instead.
std::int32_t simm12(std::int32_t value, const char* mnemonic_name) {
  if (!fits_simm(value, 12)) {
    throw std::out_of_range(std::string("Assembler: immediate out of range for ") +
                            mnemonic_name);
  }
  return value;
}

}  // namespace

// ---- Labels & layout --------------------------------------------------------

Assembler::Label Assembler::new_label() {
  label_addrs_.push_back(-1);
  return Label{static_cast<std::uint32_t>(label_addrs_.size() - 1)};
}

void Assembler::bind(Label label) {
  auto& slot = label_addrs_.at(label.id);
  if (slot >= 0) {
    throw std::logic_error("Assembler: label bound twice");
  }
  slot = static_cast<std::int64_t>(pc());
}

Assembler::Label Assembler::here() {
  Label label = new_label();
  bind(label);
  return label;
}

void Assembler::mark(const std::string& name) { marks_[name] = pc(); }

std::uint64_t Assembler::addr_of(Label label) const {
  const std::int64_t addr = label_addrs_.at(label.id);
  if (addr < 0) {
    throw std::logic_error("Assembler: label not bound");
  }
  return static_cast<std::uint64_t>(addr);
}

void Assembler::align(std::uint64_t alignment) {
  if (alignment == 0 || alignment % 4 != 0) {
    throw std::invalid_argument("Assembler: alignment must be a multiple of 4");
  }
  while (pc() % alignment != 0) {
    nop();
  }
}

// ---- Raw emission -----------------------------------------------------------

void Assembler::emit(std::uint32_t word) {
  bytes_.push_back(static_cast<std::uint8_t>(word));
  bytes_.push_back(static_cast<std::uint8_t>(word >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(word >> 16));
  bytes_.push_back(static_cast<std::uint8_t>(word >> 24));
}

void Assembler::word(std::uint32_t value) { emit(value); }

void Assembler::half(std::uint16_t value) {
  bytes_.push_back(static_cast<std::uint8_t>(value));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void Assembler::data64(std::uint64_t value) {
  emit(static_cast<std::uint32_t>(value));
  emit(static_cast<std::uint32_t>(value >> 32));
}

void Assembler::zero_bytes(std::size_t count) {
  bytes_.insert(bytes_.end(), count, 0);
}

std::uint32_t Assembler::read_word(std::size_t offset) const {
  return static_cast<std::uint32_t>(bytes_[offset]) |
         (static_cast<std::uint32_t>(bytes_[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes_[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes_[offset + 3]) << 24);
}

void Assembler::patch_word(std::size_t offset, std::uint32_t word) {
  bytes_[offset] = static_cast<std::uint8_t>(word);
  bytes_[offset + 1] = static_cast<std::uint8_t>(word >> 8);
  bytes_[offset + 2] = static_cast<std::uint8_t>(word >> 16);
  bytes_[offset + 3] = static_cast<std::uint8_t>(word >> 24);
}

// ---- Base instructions -------------------------------------------------------

void Assembler::lui(Reg rd, std::int64_t imm) { emit(enc_u(0x37, n(rd), imm)); }
void Assembler::auipc(Reg rd, std::int64_t imm) { emit(enc_u(0x17, n(rd), imm)); }

void Assembler::jal(Reg rd, Label target) {
  fixups_.push_back({bytes_.size(), target.id, FixupKind::kJal});
  emit(enc_j(0x6F, n(rd), 0));
}

void Assembler::jalr(Reg rd, Reg rs1, std::int32_t offset) {
  emit(enc_i(kOpJalr, 0, n(rd), n(rs1), simm12(offset, "jalr")));
}

void Assembler::branch(std::uint32_t funct3, Reg rs1, Reg rs2, Label target) {
  fixups_.push_back({bytes_.size(), target.id, FixupKind::kBranch});
  emit(enc_b(kOpBranch, funct3, n(rs1), n(rs2), 0));
}

void Assembler::beq(Reg rs1, Reg rs2, Label t) { branch(0, rs1, rs2, t); }
void Assembler::bne(Reg rs1, Reg rs2, Label t) { branch(1, rs1, rs2, t); }
void Assembler::blt(Reg rs1, Reg rs2, Label t) { branch(4, rs1, rs2, t); }
void Assembler::bge(Reg rs1, Reg rs2, Label t) { branch(5, rs1, rs2, t); }
void Assembler::bltu(Reg rs1, Reg rs2, Label t) { branch(6, rs1, rs2, t); }
void Assembler::bgeu(Reg rs1, Reg rs2, Label t) { branch(7, rs1, rs2, t); }

void Assembler::lb(Reg rd, Reg rs1, std::int32_t o) { emit(enc_i(kOpLoad, 0, n(rd), n(rs1), simm12(o, "load"))); }
void Assembler::lh(Reg rd, Reg rs1, std::int32_t o) { emit(enc_i(kOpLoad, 1, n(rd), n(rs1), simm12(o, "load"))); }
void Assembler::lw(Reg rd, Reg rs1, std::int32_t o) { emit(enc_i(kOpLoad, 2, n(rd), n(rs1), simm12(o, "load"))); }
void Assembler::lbu(Reg rd, Reg rs1, std::int32_t o) { emit(enc_i(kOpLoad, 4, n(rd), n(rs1), simm12(o, "load"))); }
void Assembler::lhu(Reg rd, Reg rs1, std::int32_t o) { emit(enc_i(kOpLoad, 5, n(rd), n(rs1), simm12(o, "load"))); }
void Assembler::lwu(Reg rd, Reg rs1, std::int32_t o) { emit(enc_i(kOpLoad, 6, n(rd), n(rs1), simm12(o, "load"))); }
void Assembler::ld(Reg rd, Reg rs1, std::int32_t o) { emit(enc_i(kOpLoad, 3, n(rd), n(rs1), simm12(o, "load"))); }
void Assembler::sb(Reg rs2, Reg rs1, std::int32_t o) { emit(enc_s(kOpStore, 0, n(rs1), n(rs2), simm12(o, "store"))); }
void Assembler::sh(Reg rs2, Reg rs1, std::int32_t o) { emit(enc_s(kOpStore, 1, n(rs1), n(rs2), simm12(o, "store"))); }
void Assembler::sw(Reg rs2, Reg rs1, std::int32_t o) { emit(enc_s(kOpStore, 2, n(rs1), n(rs2), simm12(o, "store"))); }
void Assembler::sd(Reg rs2, Reg rs1, std::int32_t o) { emit(enc_s(kOpStore, 3, n(rs1), n(rs2), simm12(o, "store"))); }

void Assembler::addi(Reg rd, Reg rs1, std::int32_t imm) { emit(enc_i(kOpImm, 0, n(rd), n(rs1), simm12(imm, "op-imm"))); }
void Assembler::slti(Reg rd, Reg rs1, std::int32_t imm) { emit(enc_i(kOpImm, 2, n(rd), n(rs1), simm12(imm, "op-imm"))); }
void Assembler::sltiu(Reg rd, Reg rs1, std::int32_t imm) { emit(enc_i(kOpImm, 3, n(rd), n(rs1), simm12(imm, "op-imm"))); }
void Assembler::xori(Reg rd, Reg rs1, std::int32_t imm) { emit(enc_i(kOpImm, 4, n(rd), n(rs1), simm12(imm, "op-imm"))); }
void Assembler::ori(Reg rd, Reg rs1, std::int32_t imm) { emit(enc_i(kOpImm, 6, n(rd), n(rs1), simm12(imm, "op-imm"))); }
void Assembler::andi(Reg rd, Reg rs1, std::int32_t imm) { emit(enc_i(kOpImm, 7, n(rd), n(rs1), simm12(imm, "op-imm"))); }
void Assembler::slli(Reg rd, Reg rs1, std::uint32_t s) { emit(enc_i(kOpImm, 1, n(rd), n(rs1), static_cast<std::int32_t>(s))); }
void Assembler::srli(Reg rd, Reg rs1, std::uint32_t s) { emit(enc_i(kOpImm, 5, n(rd), n(rs1), static_cast<std::int32_t>(s))); }
void Assembler::srai(Reg rd, Reg rs1, std::uint32_t s) { emit(enc_i(kOpImm, 5, n(rd), n(rs1), static_cast<std::int32_t>(s | 0x400))); }

void Assembler::add(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 0, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::sub(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 0, 0x20, n(rd), n(rs1), n(rs2))); }
void Assembler::sll(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 1, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::slt(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 2, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::sltu(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 3, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::xor_(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 4, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::srl(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 5, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::sra(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 5, 0x20, n(rd), n(rs1), n(rs2))); }
void Assembler::or_(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 6, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::and_(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 7, 0x00, n(rd), n(rs1), n(rs2))); }

void Assembler::addiw(Reg rd, Reg rs1, std::int32_t imm) { emit(enc_i(kOpImm32, 0, n(rd), n(rs1), simm12(imm, "addiw"))); }
void Assembler::slliw(Reg rd, Reg rs1, std::uint32_t s) { emit(enc_i(kOpImm32, 1, n(rd), n(rs1), static_cast<std::int32_t>(s))); }
void Assembler::srliw(Reg rd, Reg rs1, std::uint32_t s) { emit(enc_i(kOpImm32, 5, n(rd), n(rs1), static_cast<std::int32_t>(s))); }
void Assembler::sraiw(Reg rd, Reg rs1, std::uint32_t s) { emit(enc_i(kOpImm32, 5, n(rd), n(rs1), static_cast<std::int32_t>(s | 0x400))); }
void Assembler::addw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 0, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::subw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 0, 0x20, n(rd), n(rs1), n(rs2))); }
void Assembler::sllw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 1, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::srlw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 5, 0x00, n(rd), n(rs1), n(rs2))); }
void Assembler::sraw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 5, 0x20, n(rd), n(rs1), n(rs2))); }

void Assembler::fence() { emit(enc_i(0x0F, 0, 0, 0, 0x0FF)); }
void Assembler::ecall() { emit(0x00000073); }
void Assembler::ebreak() { emit(0x00100073); }
void Assembler::mret() { emit(0x30200073); }
void Assembler::wfi() { emit(0x10500073); }

void Assembler::csrrw(Reg rd, std::uint32_t csr_num, Reg rs1) { emit(enc_i(kOpSystem, 1, n(rd), n(rs1), static_cast<std::int32_t>(csr_num))); }
void Assembler::csrrs(Reg rd, std::uint32_t csr_num, Reg rs1) { emit(enc_i(kOpSystem, 2, n(rd), n(rs1), static_cast<std::int32_t>(csr_num))); }
void Assembler::csrrc(Reg rd, std::uint32_t csr_num, Reg rs1) { emit(enc_i(kOpSystem, 3, n(rd), n(rs1), static_cast<std::int32_t>(csr_num))); }
void Assembler::csrrwi(Reg rd, std::uint32_t csr_num, std::uint8_t zimm) { emit(enc_i(kOpSystem, 5, n(rd), zimm, static_cast<std::int32_t>(csr_num))); }
void Assembler::csrrsi(Reg rd, std::uint32_t csr_num, std::uint8_t zimm) { emit(enc_i(kOpSystem, 6, n(rd), zimm, static_cast<std::int32_t>(csr_num))); }
void Assembler::csrrci(Reg rd, std::uint32_t csr_num, std::uint8_t zimm) { emit(enc_i(kOpSystem, 7, n(rd), zimm, static_cast<std::int32_t>(csr_num))); }

void Assembler::mul(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 0, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::mulh(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 1, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::mulhsu(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 2, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::mulhu(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 3, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::div(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 4, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::divu(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 5, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::rem(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 6, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::remu(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg, 7, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::mulw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 0, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::divw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 4, 0x01, n(rd), n(rs1), n(rs2))); }
void Assembler::remw(Reg rd, Reg rs1, Reg rs2) { emit(enc_r(kOpReg32, 6, 0x01, n(rd), n(rs1), n(rs2))); }

// ---- Pseudo-instructions ------------------------------------------------------

void Assembler::nop() { addi(Reg::kZero, Reg::kZero, 0); }
void Assembler::mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
void Assembler::not_(Reg rd, Reg rs) { xori(rd, rs, -1); }
void Assembler::neg(Reg rd, Reg rs) { sub(rd, Reg::kZero, rs); }
void Assembler::seqz(Reg rd, Reg rs) { sltiu(rd, rs, 1); }
void Assembler::snez(Reg rd, Reg rs) { sltu(rd, Reg::kZero, rs); }

void Assembler::li(Reg rd, std::int64_t value) {
  if (fits_simm(value, 12)) {
    addi(rd, Reg::kZero, static_cast<std::int32_t>(value));
    return;
  }
  const bool fits32 =
      value >= std::numeric_limits<std::int32_t>::min() &&
      value <= std::numeric_limits<std::int32_t>::max();
  if (fits32 || xlen_ == Xlen::k32) {
    const auto u = static_cast<std::uint32_t>(value);
    const auto lo = static_cast<std::int32_t>(
        (static_cast<std::int32_t>(u << 20)) >> 20);  // sext12(u & 0xFFF)
    const std::uint32_t hi = u - static_cast<std::uint32_t>(lo);
    lui(rd, static_cast<std::int64_t>(static_cast<std::int32_t>(hi)));
    if (lo != 0) {
      if (xlen_ == Xlen::k64) {
        addiw(rd, rd, lo);
      } else {
        addi(rd, rd, lo);
      }
    }
    return;
  }
  // 64-bit constant: build upper part recursively, then shift in 12-bit
  // chunks.  value == upper * 2^12 + lo12 with lo12 sign-extended.
  const auto lo12 = static_cast<std::int32_t>((value << 52) >> 52);
  // value - lo12 in unsigned space: e.g. INT64_MAX - (-1) must wrap, not
  // overflow (the low 12 bits cancel, so the reinterpreted result is exact).
  const std::int64_t upper =
      static_cast<std::int64_t>(static_cast<std::uint64_t>(value) -
                                static_cast<std::uint64_t>(lo12)) >>
      12;
  li(rd, upper);
  slli(rd, rd, 12);
  if (lo12 != 0) {
    addi(rd, rd, lo12);
  }
}

void Assembler::la(Reg rd, Label target) {
  fixups_.push_back({bytes_.size(), target.id, FixupKind::kAuipcPair});
  auipc(rd, 0);
  addi(rd, rd, 0);
}

void Assembler::j(Label target) { jal(Reg::kZero, target); }
void Assembler::call(Label target) { jal(Reg::kRa, target); }
void Assembler::callr(Reg rs) { jalr(Reg::kRa, rs, 0); }
void Assembler::ret() { jalr(Reg::kZero, Reg::kRa, 0); }
void Assembler::jr(Reg rs) { jalr(Reg::kZero, rs, 0); }
void Assembler::beqz(Reg rs, Label t) { beq(rs, Reg::kZero, t); }
void Assembler::bnez(Reg rs, Label t) { bne(rs, Reg::kZero, t); }
void Assembler::bgez(Reg rs, Label t) { bge(rs, Reg::kZero, t); }
void Assembler::bltz(Reg rs, Label t) { blt(rs, Reg::kZero, t); }

// ---- Finalisation ---------------------------------------------------------------

Image Assembler::finish() {
  for (const Fixup& fixup : fixups_) {
    const std::int64_t bound = label_addrs_.at(fixup.label_id);
    if (bound < 0) {
      throw std::logic_error("Assembler: unresolved label at finish()");
    }
    const std::int64_t target = bound;
    const std::int64_t source = static_cast<std::int64_t>(base_ + fixup.offset);
    const std::int64_t delta = target - source;
    const std::uint32_t old_word = read_word(fixup.offset);
    switch (fixup.kind) {
      case FixupKind::kBranch: {
        if (!fits_simm(delta, 13) || (delta & 1) != 0) {
          throw std::out_of_range("Assembler: branch target out of range");
        }
        // B-type immediate bits live at [31], [30:25], [11:8], [7].
        const std::uint32_t imm_bits =
            enc_b(0, 0, 0, 0, static_cast<std::int32_t>(delta)) & 0xFE000F80u;
        patch_word(fixup.offset, (old_word & ~0xFE000F80u) | imm_bits);
        break;
      }
      case FixupKind::kJal: {
        if (!fits_simm(delta, 21) || (delta & 1) != 0) {
          throw std::out_of_range("Assembler: jal target out of range");
        }
        const std::uint32_t imm_bits =
            enc_j(0, 0, static_cast<std::int32_t>(delta)) & 0xFFFFF000u;
        patch_word(fixup.offset, (old_word & 0x00000FFFu) | imm_bits);
        break;
      }
      case FixupKind::kAuipcPair: {
        const auto lo = static_cast<std::int32_t>((delta << 52) >> 52);
        const std::int64_t hi = delta - lo;
        if (!fits_simm(hi, 32)) {
          throw std::out_of_range("Assembler: la target out of range");
        }
        const std::uint32_t auipc_word = read_word(fixup.offset);
        patch_word(fixup.offset, (auipc_word & 0x00000FFFu) |
                                     (static_cast<std::uint32_t>(hi) & 0xFFFFF000u));
        const std::uint32_t addi_word = read_word(fixup.offset + 4);
        patch_word(fixup.offset + 4,
                   (addi_word & 0x000FFFFFu) |
                       ((static_cast<std::uint32_t>(lo) & 0xFFFu) << 20));
        break;
      }
    }
  }
  Image image;
  image.base = base_;
  image.bytes = bytes_;
  image.marks = marks_;
  return image;
}

}  // namespace titan::rv

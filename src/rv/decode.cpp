#include "rv/decode.hpp"

#include "rv/encode.hpp"

namespace titan::rv {

namespace {

std::uint32_t bit(std::uint32_t x, int i) { return (x >> i) & 1u; }

std::uint32_t field(std::uint32_t x, int hi, int lo) {
  return (x >> lo) & ((1u << (hi - lo + 1)) - 1);
}

std::int64_t sext(std::uint64_t value, int bits) {
  const std::uint64_t mask = std::uint64_t{1} << (bits - 1);
  return static_cast<std::int64_t>((value ^ mask) - mask);
}

// ---- Immediate extraction for the six base formats ------------------------

std::int64_t imm_i(std::uint32_t raw) {
  return sext(field(raw, 31, 20), 12);
}

std::int64_t imm_s(std::uint32_t raw) {
  return sext((field(raw, 31, 25) << 5) | field(raw, 11, 7), 12);
}

std::int64_t imm_b(std::uint32_t raw) {
  const std::uint32_t v = (bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                          (field(raw, 30, 25) << 5) | (field(raw, 11, 8) << 1);
  return sext(v, 13);
}

std::int64_t imm_u(std::uint32_t raw) {
  return sext(raw & 0xFFFFF000u, 32);
}

std::int64_t imm_j(std::uint32_t raw) {
  const std::uint32_t v = (bit(raw, 31) << 20) | (field(raw, 19, 12) << 12) |
                          (bit(raw, 20) << 11) | (field(raw, 30, 21) << 1);
  return sext(v, 21);
}

Inst make(Op op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2,
          std::int64_t imm, std::uint32_t raw) {
  Inst inst;
  inst.op = op;
  inst.rd = rd;
  inst.rs1 = rs1;
  inst.rs2 = rs2;
  inst.imm = imm;
  inst.raw = raw;
  inst.expanded = raw;
  inst.len = 4;
  return inst;
}

Inst illegal(std::uint32_t raw) {
  Inst inst;
  inst.raw = raw;
  inst.expanded = raw;
  return inst;
}

Inst decode32(std::uint32_t raw, Xlen xlen) {
  const std::uint32_t opcode = raw & 0x7F;
  const auto rd = static_cast<std::uint8_t>(field(raw, 11, 7));
  const auto rs1 = static_cast<std::uint8_t>(field(raw, 19, 15));
  const auto rs2 = static_cast<std::uint8_t>(field(raw, 24, 20));
  const std::uint32_t f3 = field(raw, 14, 12);
  const std::uint32_t f7 = field(raw, 31, 25);
  const bool rv64 = xlen == Xlen::k64;

  switch (opcode) {
    case 0x37:
      return make(Op::kLui, rd, 0, 0, imm_u(raw), raw);
    case 0x17:
      return make(Op::kAuipc, rd, 0, 0, imm_u(raw), raw);
    case 0x6F:
      return make(Op::kJal, rd, 0, 0, imm_j(raw), raw);
    case 0x67:
      if (f3 != 0) return illegal(raw);
      return make(Op::kJalr, rd, rs1, 0, imm_i(raw), raw);
    case 0x63: {
      Op op;
      switch (f3) {
        case 0: op = Op::kBeq; break;
        case 1: op = Op::kBne; break;
        case 4: op = Op::kBlt; break;
        case 5: op = Op::kBge; break;
        case 6: op = Op::kBltu; break;
        case 7: op = Op::kBgeu; break;
        default: return illegal(raw);
      }
      return make(op, 0, rs1, rs2, imm_b(raw), raw);
    }
    case 0x03: {
      Op op;
      switch (f3) {
        case 0: op = Op::kLb; break;
        case 1: op = Op::kLh; break;
        case 2: op = Op::kLw; break;
        case 3: if (!rv64) return illegal(raw); op = Op::kLd; break;
        case 4: op = Op::kLbu; break;
        case 5: op = Op::kLhu; break;
        case 6: if (!rv64) return illegal(raw); op = Op::kLwu; break;
        default: return illegal(raw);
      }
      return make(op, rd, rs1, 0, imm_i(raw), raw);
    }
    case 0x23: {
      Op op;
      switch (f3) {
        case 0: op = Op::kSb; break;
        case 1: op = Op::kSh; break;
        case 2: op = Op::kSw; break;
        case 3: if (!rv64) return illegal(raw); op = Op::kSd; break;
        default: return illegal(raw);
      }
      return make(op, 0, rs1, rs2, imm_s(raw), raw);
    }
    case 0x13: {
      switch (f3) {
        case 0: return make(Op::kAddi, rd, rs1, 0, imm_i(raw), raw);
        case 2: return make(Op::kSlti, rd, rs1, 0, imm_i(raw), raw);
        case 3: return make(Op::kSltiu, rd, rs1, 0, imm_i(raw), raw);
        case 4: return make(Op::kXori, rd, rs1, 0, imm_i(raw), raw);
        case 6: return make(Op::kOri, rd, rs1, 0, imm_i(raw), raw);
        case 7: return make(Op::kAndi, rd, rs1, 0, imm_i(raw), raw);
        case 1: {
          const std::uint32_t shamt_bits = rv64 ? 6 : 5;
          if (field(raw, 31, 20 + shamt_bits) != 0) return illegal(raw);
          return make(Op::kSlli, rd, rs1, 0, field(raw, 25, 20), raw);
        }
        case 5: {
          const std::uint32_t top = rv64 ? field(raw, 31, 26) : field(raw, 31, 25);
          const std::int64_t shamt = rv64 ? field(raw, 25, 20) : field(raw, 24, 20);
          if (top == 0) return make(Op::kSrli, rd, rs1, 0, shamt, raw);
          if (top == (rv64 ? 0x10u : 0x20u)) {
            return make(Op::kSrai, rd, rs1, 0, shamt, raw);
          }
          return illegal(raw);
        }
        default: return illegal(raw);
      }
    }
    case 0x1B: {
      if (!rv64) return illegal(raw);
      switch (f3) {
        case 0: return make(Op::kAddiw, rd, rs1, 0, imm_i(raw), raw);
        case 1:
          if (f7 != 0) return illegal(raw);
          return make(Op::kSlliw, rd, rs1, 0, field(raw, 24, 20), raw);
        case 5:
          if (f7 == 0x00) return make(Op::kSrliw, rd, rs1, 0, field(raw, 24, 20), raw);
          if (f7 == 0x20) return make(Op::kSraiw, rd, rs1, 0, field(raw, 24, 20), raw);
          return illegal(raw);
        default: return illegal(raw);
      }
    }
    case 0x33: {
      if (f7 == 0x01) {
        static constexpr Op kMulOps[8] = {Op::kMul, Op::kMulh, Op::kMulhsu,
                                          Op::kMulhu, Op::kDiv, Op::kDivu,
                                          Op::kRem, Op::kRemu};
        return make(kMulOps[f3], rd, rs1, rs2, 0, raw);
      }
      if (f7 == 0x00) {
        static constexpr Op kOps[8] = {Op::kAdd, Op::kSll, Op::kSlt, Op::kSltu,
                                       Op::kXor, Op::kSrl, Op::kOr, Op::kAnd};
        return make(kOps[f3], rd, rs1, rs2, 0, raw);
      }
      if (f7 == 0x20) {
        if (f3 == 0) return make(Op::kSub, rd, rs1, rs2, 0, raw);
        if (f3 == 5) return make(Op::kSra, rd, rs1, rs2, 0, raw);
      }
      return illegal(raw);
    }
    case 0x3B: {
      if (!rv64) return illegal(raw);
      if (f7 == 0x01) {
        switch (f3) {
          case 0: return make(Op::kMulw, rd, rs1, rs2, 0, raw);
          case 4: return make(Op::kDivw, rd, rs1, rs2, 0, raw);
          case 5: return make(Op::kDivuw, rd, rs1, rs2, 0, raw);
          case 6: return make(Op::kRemw, rd, rs1, rs2, 0, raw);
          case 7: return make(Op::kRemuw, rd, rs1, rs2, 0, raw);
          default: return illegal(raw);
        }
      }
      if (f7 == 0x00) {
        switch (f3) {
          case 0: return make(Op::kAddw, rd, rs1, rs2, 0, raw);
          case 1: return make(Op::kSllw, rd, rs1, rs2, 0, raw);
          case 5: return make(Op::kSrlw, rd, rs1, rs2, 0, raw);
          default: return illegal(raw);
        }
      }
      if (f7 == 0x20) {
        if (f3 == 0) return make(Op::kSubw, rd, rs1, rs2, 0, raw);
        if (f3 == 5) return make(Op::kSraw, rd, rs1, rs2, 0, raw);
      }
      return illegal(raw);
    }
    case 0x0F:
      return make(Op::kFence, 0, 0, 0, 0, raw);
    case 0x73: {
      if (f3 == 0) {
        switch (field(raw, 31, 20)) {
          case 0x000: return make(Op::kEcall, 0, 0, 0, 0, raw);
          case 0x001: return make(Op::kEbreak, 0, 0, 0, 0, raw);
          case 0x302: return make(Op::kMret, 0, 0, 0, 0, raw);
          case 0x105: return make(Op::kWfi, 0, 0, 0, 0, raw);
          default: return illegal(raw);
        }
      }
      // CSR number lives in imm; zimm (for immediate forms) in rs1.
      const std::int64_t csr_num = field(raw, 31, 20);
      switch (f3) {
        case 1: return make(Op::kCsrrw, rd, rs1, 0, csr_num, raw);
        case 2: return make(Op::kCsrrs, rd, rs1, 0, csr_num, raw);
        case 3: return make(Op::kCsrrc, rd, rs1, 0, csr_num, raw);
        case 5: return make(Op::kCsrrwi, rd, rs1, 0, csr_num, raw);
        case 6: return make(Op::kCsrrsi, rd, rs1, 0, csr_num, raw);
        case 7: return make(Op::kCsrrci, rd, rs1, 0, csr_num, raw);
        default: return illegal(raw);
      }
    }
    default:
      return illegal(raw);
  }
}

}  // namespace

std::optional<std::uint32_t> expand_rvc(std::uint16_t half, Xlen xlen) {
  const std::uint32_t c = half;
  const std::uint32_t quadrant = c & 3;
  const std::uint32_t f3 = field(c, 15, 13);
  const bool rv64 = xlen == Xlen::k64;

  // x8..x15 register decoding for the prime fields.
  const auto rdp = static_cast<std::uint8_t>(8 + field(c, 4, 2));
  const auto rs1p = static_cast<std::uint8_t>(8 + field(c, 9, 7));
  const auto rs2p = rdp;
  const auto rd_full = static_cast<std::uint8_t>(field(c, 11, 7));
  const auto rs2_full = static_cast<std::uint8_t>(field(c, 6, 2));

  if (c == 0) return std::nullopt;  // Defined illegal.

  switch (quadrant) {
    case 0:
      switch (f3) {
        case 0: {  // c.addi4spn
          const std::uint32_t imm = (field(c, 12, 11) << 4) |
                                    (field(c, 10, 7) << 6) | (bit(c, 6) << 2) |
                                    (bit(c, 5) << 3);
          if (imm == 0) return std::nullopt;
          return enc_i(0x13, 0, rdp, 2, static_cast<std::int32_t>(imm));
        }
        case 2: {  // c.lw
          const std::uint32_t imm =
              (field(c, 12, 10) << 3) | (bit(c, 6) << 2) | (bit(c, 5) << 6);
          return enc_i(0x03, 2, rdp, rs1p, static_cast<std::int32_t>(imm));
        }
        case 3: {  // c.ld (RV64)
          if (!rv64) return std::nullopt;
          const std::uint32_t imm = (field(c, 12, 10) << 3) | (field(c, 6, 5) << 6);
          return enc_i(0x03, 3, rdp, rs1p, static_cast<std::int32_t>(imm));
        }
        case 6: {  // c.sw
          const std::uint32_t imm =
              (field(c, 12, 10) << 3) | (bit(c, 6) << 2) | (bit(c, 5) << 6);
          return enc_s(0x23, 2, rs1p, rs2p, static_cast<std::int32_t>(imm));
        }
        case 7: {  // c.sd (RV64)
          if (!rv64) return std::nullopt;
          const std::uint32_t imm = (field(c, 12, 10) << 3) | (field(c, 6, 5) << 6);
          return enc_s(0x23, 3, rs1p, rs2p, static_cast<std::int32_t>(imm));
        }
        default:
          return std::nullopt;
      }
    case 1:
      switch (f3) {
        case 0: {  // c.addi / c.nop
          const auto imm = static_cast<std::int32_t>(
              sext((bit(c, 12) << 5) | field(c, 6, 2), 6));
          return enc_i(0x13, 0, rd_full, rd_full, imm);
        }
        case 1: {
          if (rv64) {  // c.addiw
            if (rd_full == 0) return std::nullopt;
            const auto imm = static_cast<std::int32_t>(
                sext((bit(c, 12) << 5) | field(c, 6, 2), 6));
            return enc_i(0x1B, 0, rd_full, rd_full, imm);
          }
          // RV32 c.jal
          const auto off = static_cast<std::int32_t>(sext(
              (bit(c, 12) << 11) | (bit(c, 11) << 4) | (field(c, 10, 9) << 8) |
                  (bit(c, 8) << 10) | (bit(c, 7) << 6) | (bit(c, 6) << 7) |
                  (field(c, 5, 3) << 1) | (bit(c, 2) << 5),
              12));
          return enc_j(0x6F, 1, off);
        }
        case 2: {  // c.li
          const auto imm = static_cast<std::int32_t>(
              sext((bit(c, 12) << 5) | field(c, 6, 2), 6));
          return enc_i(0x13, 0, rd_full, 0, imm);
        }
        case 3: {
          if (rd_full == 2) {  // c.addi16sp
            const auto imm = static_cast<std::int32_t>(
                sext((bit(c, 12) << 9) | (bit(c, 6) << 4) | (bit(c, 5) << 6) |
                         (field(c, 4, 3) << 7) | (bit(c, 2) << 5),
                     10));
            if (imm == 0) return std::nullopt;
            return enc_i(0x13, 0, 2, 2, imm);
          }
          // c.lui
          const std::int64_t imm =
              sext((static_cast<std::uint64_t>(bit(c, 12)) << 17) |
                       (static_cast<std::uint64_t>(field(c, 6, 2)) << 12),
                   18);
          if (imm == 0) return std::nullopt;
          return enc_u(0x37, rd_full, imm);
        }
        case 4: {
          const std::uint32_t f2 = field(c, 11, 10);
          if (f2 == 0 || f2 == 1) {  // c.srli / c.srai
            const std::uint32_t shamt = (bit(c, 12) << 5) | field(c, 6, 2);
            if (!rv64 && bit(c, 12)) return std::nullopt;
            const std::int32_t imm = static_cast<std::int32_t>(shamt) |
                                     (f2 == 1 ? 0x400 : 0);
            return enc_i(0x13, 5, rs1p, rs1p, imm);
          }
          if (f2 == 2) {  // c.andi
            const auto imm = static_cast<std::int32_t>(
                sext((bit(c, 12) << 5) | field(c, 6, 2), 6));
            return enc_i(0x13, 7, rs1p, rs1p, imm);
          }
          // f2 == 3: register-register ops
          const std::uint32_t f2b = field(c, 6, 5);
          if (bit(c, 12) == 0) {
            switch (f2b) {
              case 0: return enc_r(0x33, 0, 0x20, rs1p, rs1p, rdp);  // c.sub
              case 1: return enc_r(0x33, 4, 0x00, rs1p, rs1p, rdp);  // c.xor
              case 2: return enc_r(0x33, 6, 0x00, rs1p, rs1p, rdp);  // c.or
              default: return enc_r(0x33, 7, 0x00, rs1p, rs1p, rdp); // c.and
            }
          }
          if (!rv64) return std::nullopt;
          switch (f2b) {
            case 0: return enc_r(0x3B, 0, 0x20, rs1p, rs1p, rdp);  // c.subw
            case 1: return enc_r(0x3B, 0, 0x00, rs1p, rs1p, rdp);  // c.addw
            default: return std::nullopt;
          }
        }
        case 5: {  // c.j
          const auto off = static_cast<std::int32_t>(sext(
              (bit(c, 12) << 11) | (bit(c, 11) << 4) | (field(c, 10, 9) << 8) |
                  (bit(c, 8) << 10) | (bit(c, 7) << 6) | (bit(c, 6) << 7) |
                  (field(c, 5, 3) << 1) | (bit(c, 2) << 5),
              12));
          return enc_j(0x6F, 0, off);
        }
        case 6:    // c.beqz
        case 7: {  // c.bnez
          const auto off = static_cast<std::int32_t>(
              sext((bit(c, 12) << 8) | (field(c, 11, 10) << 3) |
                       (field(c, 6, 5) << 6) | (field(c, 4, 3) << 1) |
                       (bit(c, 2) << 5),
                   9));
          return enc_b(0x63, f3 == 6 ? 0 : 1, rs1p, 0, off);
        }
        default:
          return std::nullopt;
      }
    case 2:
      switch (f3) {
        case 0: {  // c.slli
          const std::uint32_t shamt = (bit(c, 12) << 5) | field(c, 6, 2);
          if (!rv64 && bit(c, 12)) return std::nullopt;
          return enc_i(0x13, 1, rd_full, rd_full,
                       static_cast<std::int32_t>(shamt));
        }
        case 2: {  // c.lwsp
          if (rd_full == 0) return std::nullopt;
          const std::uint32_t imm =
              (bit(c, 12) << 5) | (field(c, 6, 4) << 2) | (field(c, 3, 2) << 6);
          return enc_i(0x03, 2, rd_full, 2, static_cast<std::int32_t>(imm));
        }
        case 3: {  // c.ldsp (RV64)
          if (!rv64 || rd_full == 0) return std::nullopt;
          const std::uint32_t imm =
              (bit(c, 12) << 5) | (field(c, 6, 5) << 3) | (field(c, 4, 2) << 6);
          return enc_i(0x03, 3, rd_full, 2, static_cast<std::int32_t>(imm));
        }
        case 4: {
          if (bit(c, 12) == 0) {
            if (rs2_full == 0) {  // c.jr
              if (rd_full == 0) return std::nullopt;
              return enc_i(0x67, 0, 0, rd_full, 0);
            }
            // c.mv
            return enc_r(0x33, 0, 0x00, rd_full, 0, rs2_full);
          }
          if (rs2_full == 0) {
            if (rd_full == 0) return 0x00100073;  // c.ebreak
            return enc_i(0x67, 0, 1, rd_full, 0);  // c.jalr
          }
          return enc_r(0x33, 0, 0x00, rd_full, rd_full, rs2_full);  // c.add
        }
        case 6: {  // c.swsp
          const std::uint32_t imm = (field(c, 12, 9) << 2) | (field(c, 8, 7) << 6);
          return enc_s(0x23, 2, 2, rs2_full, static_cast<std::int32_t>(imm));
        }
        case 7: {  // c.sdsp (RV64)
          if (!rv64) return std::nullopt;
          const std::uint32_t imm = (field(c, 12, 10) << 3) | (field(c, 9, 7) << 6);
          return enc_s(0x23, 3, 2, rs2_full, static_cast<std::int32_t>(imm));
        }
        default:
          return std::nullopt;
      }
    default:
      return std::nullopt;
  }
}

Inst decode(std::uint32_t raw, Xlen xlen) {
  if ((raw & 3) != 3) {
    const auto half = static_cast<std::uint16_t>(raw);
    const auto expansion = expand_rvc(half, xlen);
    if (!expansion.has_value()) {
      Inst inst;
      inst.raw = half;
      inst.expanded = half;
      inst.len = 2;
      return inst;
    }
    Inst inst = decode32(*expansion, xlen);
    inst.raw = half;
    inst.expanded = *expansion;
    inst.len = 2;
    return inst;
  }
  return decode32(raw, xlen);
}

}  // namespace titan::rv

// Human-readable disassembly, used by trace dumps, examples, and debugging.
#pragma once

#include <string>

#include "rv/isa.hpp"

namespace titan::rv {

/// Render an instruction in objdump-like syntax, e.g. "addi sp, sp, -16".
[[nodiscard]] std::string disasm(const Inst& inst);

}  // namespace titan::rv

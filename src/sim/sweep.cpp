#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

namespace titan::sim {

// ---- WorkerPool -------------------------------------------------------------

WorkerPool::WorkerPool(unsigned threads) {
  const unsigned count = threads == 0 ? 1 : threads;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void WorkerPool::set_max_queue(std::size_t limit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  max_queue_ = limit;
}

bool WorkerPool::try_submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (max_queue_ != 0 && queue_.size() >= max_queue_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

std::size_t WorkerPool::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t WorkerPool::active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // stopping_ with a drained queue.
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      idle_.notify_all();
    }
  }
}

// ---- SweepRunner ------------------------------------------------------------

SweepRunner::SweepRunner(SweepOptions options)
    : threads_(options.threads == 0 ? hardware_threads() : options.threads) {}

unsigned SweepRunner::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void SweepRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& job) {
  if (count == 0) {
    return;
  }
  if (threads_ == 1 || count == 1) {
    // Serial reference path: inline, exceptions propagate naturally.
    for (std::size_t index = 0; index < count; ++index) {
      job(index);
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  // First failing *index* (not first in wall time), so parallel failure
  // reporting matches what a serial run would have thrown.  Indices are
  // claimed in ascending order, so when a failure stops further claims,
  // every lower index is already in flight and will still report — the
  // lowest failing index is found without running the rest of the grid.
  std::mutex failure_mutex;
  std::size_t failed_index = count;
  std::exception_ptr failure;

  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) {
        return;
      }
      try {
        job(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        failed.store(true, std::memory_order_relaxed);
        if (index < failed_index) {
          failed_index = index;
          failure = std::current_exception();
        }
      }
    }
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, count));
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(threads_ - 1);
  }
  // Dispatch workers 1..N-1 onto the persistent pool; the calling thread is
  // worker 0.  A per-call latch (not WorkerPool::wait_idle) keeps the wait
  // scoped to this run's tasks.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  unsigned pending = workers - 1;
  for (unsigned i = 1; i < workers; ++i) {
    pool_->submit([&] {
      worker();
      const std::lock_guard<std::mutex> lock(done_mutex);
      if (--pending == 0) {
        done_cv.notify_one();
      }
    });
  }
  worker();
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
  lock.unlock();
  if (failure) {
    std::rethrow_exception(failure);
  }
}

// ---- Sharding ---------------------------------------------------------------

bool parse_shard_spec(const char* text, ShardSpec* out) {
  char* slash = nullptr;
  const unsigned long index = std::strtoul(text, &slash, 10);
  if (slash == text || *slash != '/') {
    return false;
  }
  char* end = nullptr;
  const unsigned long count = std::strtoul(slash + 1, &end, 10);
  if (end == slash + 1 || *end != '\0' || count == 0 || index >= count) {
    return false;
  }
  out->index = static_cast<unsigned>(index);
  out->count = static_cast<unsigned>(count);
  return true;
}

ShardPlanner::ShardPlanner(std::size_t total_points, unsigned shard_count)
    : total_points_(total_points),
      shard_count_(shard_count == 0 ? 1 : shard_count) {}

ShardRange ShardPlanner::range(unsigned shard_index) const {
  const std::size_t quotient = total_points_ / shard_count_;
  const std::size_t remainder = total_points_ % shard_count_;
  ShardRange owned;
  owned.begin = shard_index * quotient +
                std::min<std::size_t>(shard_index, remainder);
  owned.end = owned.begin + quotient + (shard_index < remainder ? 1 : 0);
  return owned;
}

SweepCli parse_sweep_cli(int argc, char** argv, std::string default_json) {
  SweepCli cli;
  cli.json_path = std::move(default_json);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      const long value = std::strtol(arg + 10, nullptr, 10);
      cli.threads = value <= 0 ? 0 : static_cast<unsigned>(value);
      cli.threads_given = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      cli.json_path = arg + 7;
      cli.json_given = true;
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      if (!parse_shard_spec(arg + 8, &cli.shard)) {
        cli.error = std::string("malformed --shard value '") + (arg + 8) +
                    "' (expected i/K with K >= 1 and i < K)";
        return cli;
      }
      cli.shard_given = true;
    } else if (std::strncmp(arg, "--shard_json=", 13) == 0) {
      cli.shard_json_path = arg + 13;
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      cli.engine = arg + 9;
      cli.engine_given = true;
      if (cli.engine != "lockstep" && cli.engine != "event") {
        cli.error = std::string("unknown --engine value '") + cli.engine +
                    "' (expected 'lockstep' or 'event')";
        return cli;
      }
    } else if (std::strncmp(arg, "--warm_start=", 13) == 0) {
      cli.warm_start_path = arg + 13;
      cli.warm_start_given = true;
    } else if (std::strncmp(arg, "--write_checkpoints=", 20) == 0) {
      cli.write_checkpoints_path = arg + 20;
      cli.write_checkpoints_given = true;
    }
  }
  if (cli.warm_start_given && cli.warm_start_path.empty()) {
    cli.error = "--warm_start needs a bundle path";
    return cli;
  }
  if (cli.write_checkpoints_given && cli.write_checkpoints_path.empty()) {
    cli.error = "--write_checkpoints needs a bundle path";
    return cli;
  }
  if (cli.warm_start_given && cli.write_checkpoints_given) {
    cli.error =
        "--warm_start and --write_checkpoints are mutually exclusive (one "
        "consumes a bundle, the other produces it)";
    return cli;
  }
  if (cli.shard_given && cli.shard_json_path.empty()) {
    cli.error = "--shard requires --shard_json=PATH (partial report output)";
  } else if (!cli.shard_given && !cli.shard_json_path.empty()) {
    cli.error = "--shard_json requires --shard=i/K";
  } else if (cli.shard_given && cli.json_given) {
    cli.error =
        "--shard writes a partial report via --shard_json; --json is for "
        "single-process runs (merge shards with tools/bench_merge)";
  }
  return cli;
}

// ---- JsonWriter -------------------------------------------------------------

void JsonWriter::comma_and_indent() {
  if (!need_comma_.empty()) {
    if (need_comma_.back()) {
      out_ += ",";
    }
    need_comma_.back() = true;
    out_ += "\n";
    out_.append(2 * need_comma_.size(), ' ');
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  comma_and_indent();
  out_ += "\"";
  out_ += key;
  out_ += "\": ";
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_indent();
  out_ += "{";
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += "{";
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_fields = need_comma_.back();
  need_comma_.pop_back();
  if (had_fields) {
    out_ += "\n";
    out_.append(2 * need_comma_.size(), ' ');
  }
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += "[";
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_fields = need_comma_.back();
  need_comma_.pop_back();
  if (had_fields) {
    out_ += "\n";
    out_.append(2 * need_comma_.size(), ' ');
  }
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  std::ostringstream fmt;
  fmt << value;
  out_ += fmt.str();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, int value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, unsigned value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_element(std::string_view json_text) {
  comma_and_indent();
  out_ += json_text;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  out_ += "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
    }
    out_ += c;
  }
  out_ += "\"";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  os << out_ << "\n";
  return os.good();
}

}  // namespace titan::sim

#include "sim/fault.hpp"

#include <bit>
#include <charconv>
#include <stdexcept>

namespace titan::sim {
namespace {

constexpr std::array<std::string_view, kFaultSiteCount> kSiteNames = {
    "doorbell_drop", "doorbell_dup", "mac_corrupt",
    "queue_overflow", "mem_flip",     "rot_stall",
};

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("fault plan: bad " + std::string(what) +
                                " '" + std::string(text) + "'");
  }
  return value;
}

FaultSpec parse_spec(std::string_view item) {
  const std::size_t at = item.find('@');
  if (at == std::string_view::npos) {
    throw std::invalid_argument("fault plan: missing '@nth' in '" +
                                std::string(item) + "'");
  }
  const auto site = fault_site_from_name(item.substr(0, at));
  if (!site) {
    throw std::invalid_argument("fault plan: unknown site '" +
                                std::string(item.substr(0, at)) + "'");
  }
  std::string_view rest = item.substr(at + 1);
  FaultSpec spec;
  spec.site = *site;
  const std::size_t hash = rest.find('#');
  if (hash == std::string_view::npos) {
    spec.nth = parse_u64(rest, "ordinal");
  } else {
    spec.nth = parse_u64(rest.substr(0, hash), "ordinal");
    spec.param = parse_u64(rest.substr(hash + 1), "param");
  }
  return spec;
}

}  // namespace

std::string_view fault_site_name(FaultSite site) {
  return kSiteNames[static_cast<unsigned>(site)];
}

std::optional<FaultSite> fault_site_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kSiteNames.size(); ++i) {
    if (kSiteNames[i] == name) {
      return static_cast<FaultSite>(i);
    }
  }
  return std::nullopt;
}

bool FaultPlan::has_site(FaultSite site) const {
  for (const FaultSpec& spec : faults) {
    if (spec.site == site) {
      return true;
    }
  }
  return false;
}

std::string FaultPlan::serialize() const {
  std::string out;
  for (const FaultSpec& spec : faults) {
    if (!out.empty()) {
      out += '+';
    }
    out += fault_site_name(spec.site);
    out += '@';
    out += std::to_string(spec.nth);
    if (spec.param != 0) {
      out += '#';
      out += std::to_string(spec.param);
    }
  }
  return out;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  if (text.empty()) {
    return plan;
  }
  while (true) {
    const std::size_t plus = text.find('+');
    plan.faults.push_back(parse_spec(text.substr(0, plus)));
    if (plus == std::string_view::npos) {
      break;
    }
    text = text.substr(plus + 1);
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, unsigned count) {
  Rng rng(seed);
  FaultPlan plan;
  plan.faults.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    FaultSpec spec;
    spec.site = static_cast<FaultSite>(rng.uniform(0, kFaultSiteCount - 1));
    spec.nth = rng.uniform(0, 5);
    switch (spec.site) {
      case FaultSite::kMacCorrupt:
        spec.param = rng.uniform(0, 255);
        break;
      case FaultSite::kQueueOverflow:
        spec.param = rng.uniform(1, 8);
        break;
      case FaultSite::kMemBitFlip:
        // Even param = single-bit (correctable); odd = double-bit.
        spec.param = rng.uniform(0, 127);
        break;
      case FaultSite::kRotStall:
        spec.param = rng.uniform(1, 512);
        break;
      case FaultSite::kDoorbellDrop:
      case FaultSite::kDoorbellDuplicate:
        break;
    }
    plan.faults.push_back(spec);
  }
  return plan;
}

std::size_t latency_bucket(std::uint64_t latency_cycles) {
  return latency_bucket(latency_cycles, kLatencyBuckets);
}

std::size_t latency_bucket(std::uint64_t value, std::size_t bucket_count) {
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return width < bucket_count ? width : bucket_count - 1;
}

std::uint64_t ResilienceStats::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected) {
    total += count;
  }
  return total;
}

std::uint64_t ResilienceStats::total_detected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : detected) {
    total += count;
  }
  return total;
}

}  // namespace titan::sim

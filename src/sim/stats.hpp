// Named counters and histograms attached to simulation components.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace titan::sim {

/// A flat set of named double-valued counters.  Components expose one of
/// these; the benches aggregate and print them.
class StatSet {
 public:
  void add(const std::string& name, double delta = 1.0) { values_[name] += delta; }
  void set(const std::string& name, double value) { values_[name] = value; }

  [[nodiscard]] double get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  [[nodiscard]] const std::map<std::string, double>& values() const {
    return values_;
  }

  /// Merge another StatSet into this one, prefixing its keys.
  void merge(const std::string& prefix, const StatSet& other) {
    for (const auto& [k, v] : other.values_) {
      values_[prefix + "." + k] += v;
    }
  }

  void print(std::ostream& os) const;

 private:
  std::map<std::string, double> values_;
};

/// Fixed-bucket histogram for cycle-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Approximate quantile from bucket boundaries (q in [0,1]).
  [[nodiscard]] double quantile(double q) const;

  void print(std::ostream& os, const std::string& title) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace titan::sim

// Thread-pooled sweep engine for independent simulation points.
//
// Every table/figure bench in this repo evaluates a grid of (workload,
// queue-depth, policy, fabric) points, and each point is an independent
// simulation — embarrassingly parallel host-side work.  SweepRunner shards
// the index space across a pool of worker threads and aggregates results
// *by index*, so the output is deterministic and byte-identical to a serial
// run at any thread count (jobs must be pure functions of their index: own
// your Memory/SocTop/Rng per job, which every bench here already does).
//
// Design points:
//  * job sharding via an atomic cursor — long and short points interleave
//    without static partitioning imbalance;
//  * ordered aggregation — worker completion order never leaks into output;
//  * exception safety — the first failing index's exception is rethrown on
//    the calling thread after the pool drains (matching serial semantics:
//    the lowest failing index wins, not the first to fail in wall time);
//  * threads == 1 runs inline on the calling thread (no pool, no atomics in
//    the hot path), which is both the fallback and the reference behaviour.
//
// JsonWriter is the shared emitter for the machine-readable BENCH_*.json
// sweep reports (ordered fields, no external deps).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace titan::sim {

/// Persistent worker-thread pool with a FIFO task queue — the execution
/// substrate under SweepRunner, and the same pool the scenario-serving
/// daemon (src/serve) dispatches requests on.  Extracted so "run N
/// independent jobs" (sweeps) and "serve an open-ended request stream"
/// (titand) share one pool implementation instead of two thread models.
///
/// Threads are spawned once at construction and live until destruction;
/// submit() never blocks (the queue is unbounded by default — sweeps own
/// their whole grid up front).  Callers serving an open-ended request
/// stream bound the queue with set_max_queue() and admit work through
/// try_submit(), which refuses instead of queueing past the bound — the
/// daemon's load-shedding admission control.
class WorkerPool {
 public:
  /// Spawn `threads` workers (floored at 1).
  explicit WorkerPool(unsigned threads);
  /// Finish every queued task, then join the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task.  Tasks run FIFO across the workers; exceptions that
  /// escape a task terminate (wrap fallible work yourself — the sweep layer
  /// and the daemon both do).
  void submit(std::function<void()> task);

  /// Bound the submission queue for try_submit (0 == unbounded, the
  /// default).  Tasks already executing on workers do not count against the
  /// bound — it limits *waiting* work only.
  void set_max_queue(std::size_t limit);

  /// Enqueue one task unless the queue already holds max_queue waiting
  /// tasks; returns false (task untouched) when the bound would be
  /// exceeded.  submit() ignores the bound — only admission-controlled
  /// callers pay it.
  [[nodiscard]] bool try_submit(std::function<void()> task);

  /// Tasks enqueued but not yet started — the daemon's queue-depth gauge.
  [[nodiscard]] std::size_t queued() const;
  /// Tasks currently executing on a worker.
  [[nodiscard]] std::size_t active() const;

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;       ///< Workers wait for tasks here.
  std::condition_variable idle_;       ///< wait_idle() waits here.
  std::deque<std::function<void()>> queue_;
  std::size_t max_queue_ = 0;  ///< try_submit bound; 0 == unbounded.
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

struct SweepOptions {
  /// Worker threads; 0 picks hardware_concurrency, 1 runs serial inline.
  unsigned threads = 1;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Number of workers this runner actually uses (>= 1).
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static unsigned hardware_threads();

  /// Evaluate `count` independent jobs and return the results in index
  /// order.  `job` is called with indices [0, count) from pool threads (or
  /// inline when threads() == 1) and must not share mutable state across
  /// indices.
  template <typename Result>
  std::vector<Result> run(std::size_t count,
                          const std::function<Result(std::size_t)>& job) {
    std::vector<Result> results(count);
    run_indexed(count, [&results, &job](std::size_t index) {
      results[index] = job(index);
    });
    return results;
  }

  /// Index-only form for jobs that write their own output slots.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& job);

 private:
  unsigned threads_;
  /// Lazily created on the first parallel run_indexed() and reused for the
  /// runner's lifetime, so repeated sweeps (warm-start loops, bench
  /// best-of-N passes) pay thread spawn once instead of per call.
  std::unique_ptr<WorkerPool> pool_;
};

// ---- Process-level sharding -------------------------------------------------
//
// SweepRunner parallelises one address space; ShardPlanner is the layer above
// it: a sweep's point grid is deterministically partitioned into K
// contiguous-by-index shards so independent *processes* (CI matrix jobs,
// fork-per-shard drivers) each own a slice.  Contiguity is the property the
// shard-merge step relies on: concatenating the shards' row arrays in shard
// order reconstructs the serial row order exactly, so the merged report is
// byte-identical to a single-process run (see sim/shard_merge.hpp).

/// "I am shard `index` of `count`" — the value of a `--shard=i/K` flag.
struct ShardSpec {
  unsigned index = 0;
  unsigned count = 1;
};

/// Parse "i/K" (e.g. "2/4") into `out`.  Requires K >= 1 and i < K.
[[nodiscard]] bool parse_shard_spec(const char* text, ShardSpec* out);

/// Half-open index range [begin, end) owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Deterministic contiguous partition of [0, total_points) into shard_count
/// slices whose sizes differ by at most one (the first total%count shards get
/// the extra point).  Shards beyond the point count own empty ranges, so any
/// K is valid for any grid.
class ShardPlanner {
 public:
  ShardPlanner(std::size_t total_points, unsigned shard_count);

  [[nodiscard]] std::size_t total_points() const { return total_points_; }
  [[nodiscard]] unsigned shard_count() const { return shard_count_; }
  [[nodiscard]] ShardRange range(unsigned shard_index) const;

 private:
  std::size_t total_points_;
  unsigned shard_count_;
};

/// Command-line conventions shared by the sweep benches:
///   --threads=N       worker threads for SweepRunner (default 1 == serial)
///   --json=PATH       destination for the machine-readable report
///   --shard=i/K       run only shard i of a K-way contiguous partition
///   --shard_json=PATH destination for the shard's partial report (manifest +
///                     owned rows; feed all K to tools/bench_merge)
///   --warm_start=PATH fork every grid point from the checkpoint bundle at
///                     PATH instead of simulating its warm-up prefix (rows
///                     stay bit-identical to a cold run)
///   --write_checkpoints=PATH  capture the grid's warm-up checkpoints, write
///                     the bundle to PATH, and exit without running the sweep
struct SweepCli {
  unsigned threads = 1;
  std::string json_path;
  bool threads_given = false;
  bool json_given = false;
  ShardSpec shard;
  bool shard_given = false;
  std::string shard_json_path;
  /// --engine=lockstep|event: co-simulation scheduler for benches that run
  /// full co-sims (results are bit-identical either way, so a lock-step
  /// witness diffs cleanly against event-driven shards — the CI cross-engine
  /// equivalence gate).  Empty == bench default (event-driven).
  std::string engine;
  bool engine_given = false;
  /// --warm_start=PATH: checkpoint bundle to fork the grid from.
  std::string warm_start_path;
  bool warm_start_given = false;
  /// --write_checkpoints=PATH: capture the grid's checkpoints and exit.
  std::string write_checkpoints_path;
  bool write_checkpoints_given = false;
  std::string error;  ///< Non-empty when a flag was malformed; exit 2.
};

[[nodiscard]] SweepCli parse_sweep_cli(int argc, char** argv,
                                       std::string default_json = {});

/// Minimal ordered JSON emitter (objects keep insertion order, arrays are
/// explicit) for the sweep reports; no external dependencies.
class JsonWriter {
 public:
  JsonWriter& begin_object();                       ///< Root or array element.
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, int value);
  JsonWriter& field(std::string_view key, unsigned value);
  JsonWriter& field(std::string_view key, bool value);
  JsonWriter& field(std::string_view key, std::string_view value);
  /// Without this overload a string literal or const char* silently takes
  /// the bool overload (pointer->bool is a standard conversion, ->
  /// string_view is user-defined) and emits `true` instead of the string.
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }

  /// Append pre-rendered JSON text as the next array element (comma and
  /// indentation handled as usual, the text itself verbatim).  This is how
  /// the shard merge splices rows extracted from partial reports without
  /// re-parsing them — splicing verbatim is what makes the merged document
  /// byte-identical to a serial run's.
  JsonWriter& raw_element(std::string_view json_text);

  [[nodiscard]] const std::string& str() const { return out_; }
  bool write_file(const std::string& path) const;

 private:
  void comma_and_indent();
  void key_prefix(std::string_view key);

  std::string out_;
  std::vector<bool> need_comma_;
};

}  // namespace titan::sim

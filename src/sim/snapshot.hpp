// Whole-SoC checkpoint snapshots: versioned, fingerprinted, fork-shareable.
//
// A Snapshot freezes every bit of deterministic simulator state at a cycle
// boundary so a run can be forked from it instead of re-simulating the
// prefix.  Sweeps fork many points from one post-warm-up checkpoint; the
// contract is that a forked run is bit-exact versus a from-scratch run on
// both co-simulation engines (every RunReport field, ordered traces, the
// popped log stream, the resilience block).
//
// Memory is captured by reference, not by copy: Memory::capture() shares the
// live pages with the snapshot via shared_ptr (copy-on-write — see
// sim/memory.hpp), so a 100-point sweep forked from one checkpoint holds one
// copy of every page no forked run has written.  Serializing to a blob
// (to_blob) materialises the pages; a deserialized snapshot owns fresh pages
// and shares them with every Memory subsequently restored from it.
//
// Blob format (all little-endian):
//   [magic u32] [version u32] [fingerprint u64] [payload...]
// where fingerprint is FNV-1a (sim::fingerprint64) over the payload bytes.
// from_blob rejects wrong magic, unknown version, truncation, and payload
// corruption (fingerprint mismatch) with SnapshotError — a stale or foreign
// checkpoint file fails loudly, never half-restores.
//
// The payload is a flat stream written by SnapshotWriter and read back by
// SnapshotReader.  Component sections are framed by u32 sentinel tags
// (expect_tag) so a save/load skew in any one component is caught at the
// section boundary instead of corrupting everything downstream.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/memory.hpp"
#include "sim/types.hpp"

namespace titan::sim {

/// Malformed, truncated, version-skewed, or corrupted snapshot data.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian byte stream for snapshot payloads.
class SnapshotWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(value); }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }
  void boolean(bool value) { u8(value ? 1 : 0); }
  /// Length-prefixed raw bytes.
  void bytes(std::span<const std::uint8_t> data) {
    u64(data.size());
    raw(data);
  }
  /// Raw bytes, no length prefix (caller knows the width).
  void raw(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void str(std::string_view text) {
    u64(text.size());
    out_.insert(out_.end(), text.begin(), text.end());
  }
  /// Section sentinel; the matching read side is expect_tag().
  void tag(std::uint32_t value) { u32(value); }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked reader over a snapshot payload; throws SnapshotError on
/// truncation or a sentinel-tag mismatch.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> data) : in_(data) {}

  std::uint8_t u8() {
    need(1, "u8");
    return in_[pos_++];
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    }
    return value;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    }
    return value;
  }
  bool boolean() { return u8() != 0; }
  std::vector<std::uint8_t> bytes() {
    const std::uint64_t len = u64();
    need(len, "bytes");
    std::vector<std::uint8_t> out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  in_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }
  /// Copy `len` raw bytes into `out` (no length prefix on the wire).
  void raw(std::span<std::uint8_t> out) {
    need(out.size(), "raw");
    std::copy(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
              in_.begin() + static_cast<std::ptrdiff_t>(pos_ + out.size()),
              out.begin());
    pos_ += out.size();
  }
  std::string str() {
    const std::uint64_t len = u64();
    need(len, "str");
    std::string out(reinterpret_cast<const char*>(in_.data()) + pos_,
                    static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }
  /// Read a section sentinel and require it to match.
  void expect_tag(std::uint32_t expected, const char* section) {
    const std::uint32_t got = u32();
    if (got != expected) {
      throw SnapshotError(std::string("snapshot: bad section tag for ") +
                          section);
    }
  }

  [[nodiscard]] bool done() const { return pos_ == in_.size(); }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

 private:
  void need(std::uint64_t count, const char* what) const {
    if (count > in_.size() - pos_) {
      throw SnapshotError(std::string("snapshot: truncated payload reading ") +
                          what);
    }
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

/// One frozen SoC state.  `memories` is ordered by the capturing SocTop
/// (host DRAM, RoT ROM, RoT SRAM); `state` is the flat component stream;
/// `log_words` is the packed prefix of commit logs the checkpointed run had
/// already popped to its log sink, replayed on warm start so a forked run's
/// observed log stream matches a cold run's.
struct Snapshot {
  static constexpr std::uint32_t kMagic = 0x50'4E'53'54;  // "TSNP"
  static constexpr std::uint32_t kVersion = 1;

  std::string scenario;   ///< Scenario::serialize() of the captured run.
  Cycle cycle = 0;        ///< Checkpoint cycle (loop-top boundary).
  std::vector<Memory::Image> memories;
  std::vector<std::uint8_t> state;
  std::vector<std::uint64_t> log_words;
  std::uint64_t fingerprint = 0;  ///< FNV-1a over the serialized payload.

  /// Recompute `fingerprint` from the current contents.  Capture does this
  /// once; restore paths verify against it.
  void seal();

  /// Serialize to the versioned, fingerprinted blob format.
  [[nodiscard]] std::vector<std::uint8_t> to_blob() const;

  /// Parse and fully validate a blob (magic, version, fingerprint, payload
  /// shape).  Throws SnapshotError on any mismatch.
  [[nodiscard]] static Snapshot from_blob(std::span<const std::uint8_t> blob);
};

/// Memory::Image payload helpers (pages are written page-number-sorted, so
/// the encoding — and hence the fingerprint — is deterministic).
void write_memory_image(SnapshotWriter& writer, const Memory::Image& image);
[[nodiscard]] Memory::Image read_memory_image(SnapshotReader& reader);

}  // namespace titan::sim

#include "sim/shard_merge.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace titan::sim {
namespace {

// Bump when the document layout changes incompatibly; bench_merge refuses to
// mix schemas.
constexpr int kSchemaVersion = 1;

void write_header(JsonWriter& json, const SweepDocHeader& header) {
  json.begin_object()
      .field("bench", std::string_view(header.bench))
      .field("schema", kSchemaVersion)
      .field("points", header.total_points)
      .field("grid_hash", std::string_view(header.grid_hash))
      .field("config_fingerprint",
             std::string_view(header.config_fingerprint));
}

// ---- Minimal scanner over renderer-produced documents -----------------------
//
// The merge only ever reads documents this library wrote, so the scanner is
// deliberately small: it understands strings (with escapes), balanced
// brackets, and `"key": value` pairs — enough to lift the manifest fields
// and the rows array out without a general JSON parser, and to reject
// anything structurally off as a malformed shard file.

/// Position just past the bracket matching the one at `open_pos`, or npos.
std::size_t skip_balanced(std::string_view text, std::size_t open_pos) {
  const char open = text[open_pos];
  const char close = open == '{' ? '}' : ']';
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open_pos; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == open) {
      ++depth;
    } else if (c == close) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string_view::npos;
}

/// Position of the value of `"key": ` within `text`, or npos.
std::size_t find_value(std::string_view text, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string_view::npos) {
    return at;
  }
  std::size_t value = at + needle.size();
  while (value < text.size() && text[value] == ' ') {
    ++value;
  }
  return value < text.size() ? value : std::string_view::npos;
}

bool parse_string_field(std::string_view text, std::string_view key,
                        std::string* out) {
  const std::size_t value = find_value(text, key);
  if (value == std::string_view::npos || text[value] != '"') {
    return false;
  }
  out->clear();
  for (std::size_t i = value + 1; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      out->push_back(text[++i]);
    } else if (text[i] == '"') {
      return true;
    } else {
      out->push_back(text[i]);
    }
  }
  return false;
}

bool parse_uint_field(std::string_view text, std::string_view key,
                      std::uint64_t* out) {
  const std::size_t value = find_value(text, key);
  if (value == std::string_view::npos || text[value] < '0' ||
      text[value] > '9') {
    return false;
  }
  *out = 0;
  for (std::size_t i = value; i < text.size() && text[i] >= '0' &&
                              text[i] <= '9';
       ++i) {
    *out = *out * 10 + static_cast<std::uint64_t>(text[i] - '0');
  }
  return true;
}

struct ParsedShard {
  std::string label;  ///< Path or "shard document #i", for error messages.
  SweepDocHeader header;
  std::uint64_t schema = 0;
  ShardSpec shard;
  ShardRange claimed;  ///< The [begin, end) the manifest claims to own.
  std::vector<std::string> rows;
};

/// Structural pre-check, run before any field lookup: a shard file that is
/// empty, that is not a JSON object, or whose top-level object never closes
/// (truncated write, out-of-disk, killed bench) gets a diagnosis naming the
/// file and byte offset — not the generic "missing \"rows\"" that every
/// field probe would otherwise report against garbage input.
bool validate_document_shape(std::string_view text,
                             const std::function<bool(const std::string&)>& fail) {
  if (text.empty()) {
    return fail("empty shard file (0 bytes)");
  }
  std::size_t first = 0;
  while (first < text.size() &&
         (text[first] == ' ' || text[first] == '\n' || text[first] == '\r' ||
          text[first] == '\t')) {
    ++first;
  }
  if (first == text.size()) {
    return fail("empty shard file (" + std::to_string(text.size()) +
                " whitespace bytes)");
  }
  if (text[first] != '{') {
    return fail("not a shard JSON document: expected '{' but found '" +
                std::string(1, text[first]) + "' at byte " +
                std::to_string(first));
  }
  if (skip_balanced(text, first) == std::string_view::npos) {
    return fail("truncated shard JSON: object opened at byte " +
                std::to_string(first) + " never closes (file is " +
                std::to_string(text.size()) + " bytes)");
  }
  return true;
}

bool parse_shard_document(const std::string& label, std::string_view text,
                          ParsedShard* out, std::string* error) {
  out->label = label;
  const auto fail = [&](const std::string& what) {
    *error = label + ": " + what;
    return false;
  };
  if (!validate_document_shape(text, fail)) {
    return false;
  }

  const std::size_t rows_value = find_value(text, "rows");
  if (rows_value == std::string_view::npos || text[rows_value] != '[') {
    return fail("missing \"rows\" array (not a shard partial?)");
  }
  // Header and manifest live strictly before the rows array, so field
  // lookups can never alias a row's own keys.
  const std::string_view prefix = text.substr(0, rows_value);

  if (!parse_string_field(prefix, "bench", &out->header.bench)) {
    return fail("missing \"bench\"");
  }
  if (!parse_uint_field(prefix, "schema", &out->schema)) {
    return fail("missing \"schema\"");
  }
  if (out->schema != static_cast<std::uint64_t>(kSchemaVersion)) {
    return fail("unsupported schema " + std::to_string(out->schema) +
                " (this bench_merge understands schema " +
                std::to_string(kSchemaVersion) + ")");
  }
  if (!parse_uint_field(prefix, "points", &out->header.total_points)) {
    return fail("missing \"points\"");
  }
  if (!parse_string_field(prefix, "grid_hash", &out->header.grid_hash)) {
    return fail("missing \"grid_hash\"");
  }
  if (!parse_string_field(prefix, "config_fingerprint",
                          &out->header.config_fingerprint)) {
    return fail("missing \"config_fingerprint\"");
  }

  const std::size_t shard_value = find_value(prefix, "shard");
  if (shard_value == std::string_view::npos || prefix[shard_value] != '{') {
    return fail("missing \"shard\" manifest");
  }
  const std::size_t shard_end = skip_balanced(prefix, shard_value);
  if (shard_end == std::string_view::npos) {
    return fail("unterminated \"shard\" manifest");
  }
  const std::string_view manifest =
      prefix.substr(shard_value, shard_end - shard_value);
  std::uint64_t index = 0, count = 0, begin = 0, end = 0;
  if (!parse_uint_field(manifest, "index", &index) ||
      !parse_uint_field(manifest, "count", &count) ||
      !parse_uint_field(manifest, "begin", &begin) ||
      !parse_uint_field(manifest, "end", &end)) {
    return fail("shard manifest needs index/count/begin/end");
  }
  if (count == 0 || index >= count) {
    return fail("shard manifest claims index " + std::to_string(index) +
                " of " + std::to_string(count));
  }
  out->shard.index = static_cast<unsigned>(index);
  out->shard.count = static_cast<unsigned>(count);
  out->claimed.begin = static_cast<std::size_t>(begin);
  out->claimed.end = static_cast<std::size_t>(end);

  const std::size_t rows_end = skip_balanced(text, rows_value);
  if (rows_end == std::string_view::npos) {
    return fail("unterminated \"rows\" array");
  }
  // Split the array body into verbatim row-object texts.
  std::size_t i = rows_value + 1;
  const std::size_t body_end = rows_end - 1;
  while (i < body_end) {
    const char c = text[i];
    if (c == ' ' || c == '\n' || c == ',') {
      ++i;
      continue;
    }
    if (c != '{') {
      return fail("malformed rows array (expected an object element)");
    }
    const std::size_t element_end = skip_balanced(text, i);
    if (element_end == std::string_view::npos || element_end > body_end) {
      return fail("unterminated row object");
    }
    out->rows.emplace_back(text.substr(i, element_end - i));
    i = element_end;
  }
  return true;
}

MergeResult merge_parsed(std::vector<ParsedShard> shards) {
  MergeResult result;
  const auto fail = [&result](std::string what) {
    result.error = std::move(what);
    return result;
  };
  if (shards.empty()) {
    return fail("no shard files given");
  }

  const ParsedShard& first = shards.front();
  for (const ParsedShard& shard : shards) {
    if (shard.header.bench != first.header.bench) {
      return fail("bench mismatch: " + first.label + " is \"" +
                  first.header.bench + "\" but " + shard.label + " is \"" +
                  shard.header.bench + "\"");
    }
    if (shard.header.total_points != first.header.total_points) {
      return fail("point count mismatch: " + first.label + " has " +
                  std::to_string(first.header.total_points) + " but " +
                  shard.label + " has " +
                  std::to_string(shard.header.total_points));
    }
    if (shard.header.grid_hash != first.header.grid_hash) {
      return fail("grid hash skew: " + first.label + " has " +
                  first.header.grid_hash + " but " + shard.label + " has " +
                  shard.header.grid_hash +
                  " (shards ran different point grids)");
    }
    if (shard.header.config_fingerprint != first.header.config_fingerprint) {
      return fail("config fingerprint skew: " + first.label + " has " +
                  first.header.config_fingerprint + " but " + shard.label +
                  " has " + shard.header.config_fingerprint +
                  " (shards ran different configurations)");
    }
    if (shard.shard.count != first.shard.count) {
      return fail("shard count mismatch: " + first.label + " says K=" +
                  std::to_string(first.shard.count) + " but " + shard.label +
                  " says K=" + std::to_string(shard.shard.count));
    }
  }

  const unsigned count = first.shard.count;
  std::vector<const ParsedShard*> by_index(count, nullptr);
  for (const ParsedShard& shard : shards) {
    const ParsedShard*& slot = by_index[shard.shard.index];
    if (slot != nullptr) {
      return fail("overlapping shards: index " +
                  std::to_string(shard.shard.index) + " provided by both " +
                  slot->label + " and " + shard.label);
    }
    slot = &shard;
  }
  for (unsigned i = 0; i < count; ++i) {
    if (by_index[i] == nullptr) {
      return fail("missing shard " + std::to_string(i) + " of " +
                  std::to_string(count));
    }
  }

  const ShardPlanner planner(first.header.total_points, count);
  for (unsigned i = 0; i < count; ++i) {
    const ParsedShard& shard = *by_index[i];
    const ShardRange planned = planner.range(i);
    if (shard.claimed.begin != planned.begin ||
        shard.claimed.end != planned.end) {
      return fail(shard.label + ": shard " + std::to_string(i) + "/" +
                  std::to_string(count) + " claims points [" +
                  std::to_string(shard.claimed.begin) + "," +
                  std::to_string(shard.claimed.end) +
                  ") but the plan assigns [" + std::to_string(planned.begin) +
                  "," + std::to_string(planned.end) + ") (skewed shard plan)");
    }
    if (shard.rows.size() != planned.size()) {
      return fail(shard.label + ": shard " + std::to_string(i) + "/" +
                  std::to_string(count) + " owns " +
                  std::to_string(planned.size()) + " points but carries " +
                  std::to_string(shard.rows.size()) + " rows");
    }
  }

  JsonWriter json;
  write_header(json, first.header);
  json.begin_array("rows");
  for (unsigned i = 0; i < count; ++i) {
    for (const std::string& row : by_index[i]->rows) {
      json.raw_element(row);
    }
  }
  json.end_array().end_object();
  result.ok = true;
  result.merged = json.str();
  return result;
}

}  // namespace

std::uint64_t fingerprint64(std::string_view data) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis.
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a prime.
  }
  return hash;
}

std::string fingerprint_hex(std::string_view data) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint64(data)));
  return buffer;
}

std::string render_full_document(const SweepDocHeader& header,
                                 const RowEmitter& emit_row) {
  JsonWriter json;
  write_header(json, header);
  json.begin_array("rows");
  for (std::size_t index = 0; index < header.total_points; ++index) {
    emit_row(json, index);
  }
  json.end_array().end_object();
  return json.str();
}

std::string render_shard_document(const SweepDocHeader& header,
                                  const ShardSpec& shard,
                                  const RowEmitter& emit_row) {
  const ShardRange owned =
      ShardPlanner(header.total_points, shard.count).range(shard.index);
  JsonWriter json;
  write_header(json, header);
  json.begin_object("shard")
      .field("index", shard.index)
      .field("count", shard.count)
      .field("begin", static_cast<std::uint64_t>(owned.begin))
      .field("end", static_cast<std::uint64_t>(owned.end))
      .end_object();
  json.begin_array("rows");
  for (std::size_t index = owned.begin; index < owned.end; ++index) {
    emit_row(json, index);
  }
  json.end_array().end_object();
  return json.str();
}

bool write_document(const std::string& path, std::string_view document) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  os << document << "\n";
  os.flush();
  return os.good();
}

MergeResult merge_shard_documents(const std::vector<std::string>& documents) {
  std::vector<ParsedShard> shards(documents.size());
  MergeResult result;
  for (std::size_t i = 0; i < documents.size(); ++i) {
    if (!parse_shard_document("shard document #" + std::to_string(i),
                              documents[i], &shards[i], &result.error)) {
      return result;
    }
  }
  return merge_parsed(std::move(shards));
}

MergeResult merge_shard_files(const std::vector<std::string>& paths) {
  std::vector<ParsedShard> shards(paths.size());
  MergeResult result;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::ifstream is(paths[i]);
    if (!is) {
      result.error = "cannot read " + paths[i];
      return result;
    }
    std::ostringstream content;
    content << is.rdbuf();
    if (!parse_shard_document(paths[i], content.str(), &shards[i],
                              &result.error)) {
      return result;
    }
  }
  return merge_parsed(std::move(shards));
}

}  // namespace titan::sim

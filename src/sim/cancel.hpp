// Cooperative cancellation for long-running simulations.
//
// A CancelToken is a one-shot, thread-safe cancellation flag shared between
// the party that wants a run stopped (a deadline reaper, a disconnect
// detector, a draining server) and the simulation loop that honours it.
// SocTop::run checks the token at loop-top / quantum boundaries only, so the
// simulated machine never observes the cancellation — a run either stops
// cleanly between cycles (reporting the cycles completed so far) or finishes
// untouched.  A run that completes without the token firing is bit-identical
// to one executed with no token at all; that property is gated registry-wide
// by engine_equivalence_test.
//
// The first cancel() wins: a token records exactly one reason, and later
// cancels (a deadline firing after the client already disconnected, a drain
// sweeping a token the reaper just fired) are no-ops.  This keeps the
// reported error code deterministic when several cancellers race.
#pragma once

#include <atomic>
#include <cstdint>

namespace titan::sim {

class CancelToken {
 public:
  enum class Reason : std::uint8_t {
    kNone = 0,        ///< Not cancelled.
    kDeadline = 1,    ///< Per-request wall-clock deadline expired.
    kShutdown = 2,    ///< Server draining; stragglers cut off.
    kDisconnect = 3,  ///< Client vanished; nobody is waiting for the result.
  };

  /// Request cancellation.  First caller's reason sticks; later calls are
  /// no-ops.  Safe from any thread (and wait-free — callable from the
  /// deadline reaper while the simulation loop polls).
  void cancel(Reason reason) {
    std::uint8_t expected = 0;
    state_.compare_exchange_strong(expected,
                                   static_cast<std::uint8_t>(reason),
                                   std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    return state_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(Reason::kNone);
  }

  /// The winning reason (kNone while not cancelled).
  [[nodiscard]] Reason reason() const {
    return static_cast<Reason>(state_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint8_t> state_{0};
};

}  // namespace titan::sim

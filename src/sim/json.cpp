#include "sim/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace titan::sim {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::logic_error(std::string("JsonValue: value is not a ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) {
    kind_error("bool");
  }
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) {
    kind_error("number");
  }
  return number_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) {
    kind_error("number");
  }
  if (!number_is_integral_) {
    throw std::logic_error("JsonValue: number is not an integer");
  }
  return integer_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    kind_error("string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    kind_error("array");
  }
  return array_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  return object_;
}

// ---- Parser -----------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError("json: " + message + " at byte " +
                             std::to_string(pos_),
                         pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char wanted) {
    if (peek() != wanted) {
      fail(std::string("expected '") + wanted + "', found '" + text_[pos_] +
           "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kString;
        value.string_ = parse_string();
        return value;
      }
      case 't': {
        if (!consume_literal("true")) {
          fail("malformed literal (expected 'true')");
        }
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = true;
        return value;
      }
      case 'f': {
        if (!consume_literal("false")) {
          fail("malformed literal (expected 'false')");
        }
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = false;
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) {
          fail("malformed literal (expected 'null')");
        }
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.object_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    if (peek() != '"') {
      fail("expected a string");
    }
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        fail("unterminated escape sequence");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default:
          --pos_;
          fail(std::string("unknown escape '\\") + escape + "'");
      }
    }
  }

  /// \uXXXX (BMP only; surrogate pairs rejected — the wire protocol never
  /// produces them), encoded back to UTF-8.
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("non-hex digit in \\u escape");
      }
    }
    pos_ += 4;
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("surrogate \\u escapes are not supported");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      fail("malformed number");
    }
    // JSON forbids leading zeros ("01"), which strtod would accept.
    const std::size_t first_digit = token[0] == '-' ? 1 : 0;
    if (token.size() > first_digit + 1 && token[first_digit] == '0' &&
        token[first_digit + 1] >= '0' && token[first_digit + 1] <= '9') {
      pos_ = start;
      fail("malformed number '" + token + "' (leading zero)");
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    char* end = nullptr;
    value.number_ = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value.number_)) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    if (integral) {
      errno = 0;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        value.number_is_integral_ = true;
        value.integer_ = parsed;
      }
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    const unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", byte);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace titan::sim

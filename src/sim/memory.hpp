// Sparse byte-addressable memory used for every RAM/ROM in the modelled SoC.
//
// Backed by 4 KiB pages allocated on first touch, so a 64-bit address space
// costs only what the workload actually touches.  All accesses are
// little-endian, matching RISC-V.
//
// Hot-path design (this is the floor under simulator throughput):
//  * every access resolves its page ONCE through a small direct-mapped page
//    cache (separate instruction/data lanes) in front of the hash map, then
//    memcpy's within the page — a read64 is one tag compare, not 8 hash
//    probes;
//  * accesses that straddle a page boundary take a cold out-of-line path;
//  * bulk read_block/write_block move whole page spans for image load/dump;
//  * an access-statistics block counts reads, writes, fetches, page-cache
//    hits/misses, straddles, and unmapped reads; optional strict mode turns
//    an unmapped read (which legally returns 0) into an exception so co-sim
//    fuzzing can detect wild reads.
//
// set_fast_path_enabled(false) routes every access byte-by-byte through the
// hash map — the seed implementation's behaviour — so benchmarks can report
// honest before/after numbers from one binary.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace titan::sim {

/// Access-path statistics (cheap monotonic counters, always on).
struct MemStats {
  std::uint64_t reads = 0;            ///< Data read calls (any width).
  std::uint64_t writes = 0;           ///< Write calls (any width).
  std::uint64_t fetches = 0;          ///< Instruction-window fetches.
  std::uint64_t page_cache_hits = 0;  ///< Fast-path tag matches.
  std::uint64_t page_cache_misses = 0;///< Hash-map fills of a cache way.
  std::uint64_t straddles = 0;        ///< Accesses crossing a page boundary.
  std::uint64_t unmapped_reads = 0;   ///< Reads of never-written pages.
  std::uint64_t bulk_bytes = 0;       ///< Bytes moved by block operations.
  std::uint64_t neg_cache_hits = 0;   ///< Unmapped probes answered by the
                                      ///< negative page cache (no hash walk).

  bool operator==(const MemStats&) const = default;
};

/// Stable reference to one mapped page, for callers (the ISS fetch stage)
/// that hoist the page probe out of their inner loop.  `data` is null when
/// the page is unmapped.  The reference is valid while `epoch` equals the
/// owning Memory's map_epoch(): the epoch advances whenever the page table
/// changes shape (new page mapped, clear(), move), never on plain stores —
/// stores mutate the referenced bytes in place, so a holder always reads
/// current contents.
struct PageRef {
  const std::uint8_t* data = nullptr;
  std::uint64_t epoch = 0;

  /// Little-endian 32-bit window at `offset` (caller keeps offset+4 in page).
  [[nodiscard]] std::uint32_t window32(std::size_t offset) const {
    if constexpr (std::endian::native == std::endian::little) {
      std::uint32_t value;
      std::memcpy(&value, data + offset, sizeof(value));
      return value;
    } else {
      const std::uint8_t* src = data + offset;
      return static_cast<std::uint32_t>(src[0]) |
             (static_cast<std::uint32_t>(src[1]) << 8) |
             (static_cast<std::uint32_t>(src[2]) << 16) |
             (static_cast<std::uint32_t>(src[3]) << 24);
    }
  }
};

class Memory {
 public:
  static constexpr std::size_t kPageBits = 12;
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;
  using Page = std::array<std::uint8_t, kPageSize>;
  static constexpr std::size_t kWays = 16;
  static constexpr std::size_t kNegWays = 16;
  static constexpr Addr kNoPage = ~Addr{0};

  /// Checkpoint image of one Memory (see sim/snapshot.hpp).  Pages are held
  /// by shared_ptr: capture() shares the live pages with the image instead
  /// of copying them, and a Memory restored from the image shares them too —
  /// copy-on-write in touch_page() clones a page the first time any owner
  /// writes it, so N runs forked from one checkpoint pay for one copy of
  /// every page they never write.  The way/negative-cache tags are part of
  /// the image so a restored memory's cache-stat lanes (page_cache_hits,
  /// neg_cache_hits, ...) continue bit-exactly versus the captured run.
  struct Image {
    /// (page number, page) pairs sorted by page number — deterministic
    /// serialization order, hence a deterministic snapshot fingerprint.
    std::vector<std::pair<Addr, std::shared_ptr<const Page>>> pages;
    MemStats stats{};
    std::array<std::array<Addr, kWays>, 2> way_tags{[] {
      std::array<std::array<Addr, kWays>, 2> init{};
      for (auto& lane : init) lane.fill(kNoPage);
      return init;
    }()};
    std::array<Addr, kNegWays> neg_tags{[] {
      std::array<Addr, kNegWays> init{};
      init.fill(kNoPage);
      return init;
    }()};
    bool fast_path = true;
    bool strict_unmapped = false;
  };

  Memory() = default;

  // Non-copyable (pages can be large); movable.  Moves invalidate both
  // objects' page caches: the source's ways would otherwise keep pointing
  // into pages the destination now owns.
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;
  Memory(Memory&& other) noexcept { *this = std::move(other); }
  Memory& operator=(Memory&& other) noexcept {
    if (this != &other) {
      pages_ = std::move(other.pages_);
      stats_ = other.stats_;
      fast_path_ = other.fast_path_;
      strict_unmapped_ = other.strict_unmapped_;
      invalidate_page_cache();
      ++map_epoch_;
      other.pages_.clear();
      other.invalidate_page_cache();
      ++other.map_epoch_;
      other.stats_ = MemStats{};
    }
    return *this;
  }

  [[nodiscard]] std::uint8_t read8(Addr addr) const { return read_le<std::uint8_t>(addr); }
  [[nodiscard]] std::uint16_t read16(Addr addr) const { return read_le<std::uint16_t>(addr); }
  [[nodiscard]] std::uint32_t read32(Addr addr) const { return read_le<std::uint32_t>(addr); }
  [[nodiscard]] std::uint64_t read64(Addr addr) const { return read_le<std::uint64_t>(addr); }

  void write8(Addr addr, std::uint8_t value) { write_le(addr, value); }
  void write16(Addr addr, std::uint16_t value) { write_le(addr, value); }
  void write32(Addr addr, std::uint32_t value) { write_le(addr, value); }
  void write64(Addr addr, std::uint64_t value) { write_le(addr, value); }

  /// Fetch a 32-bit instruction window at `addr` through the instruction
  /// lane of the page cache.  The window may overshoot the end of a mapped
  /// region by two bytes (a compressed instruction only consumes the low
  /// half); only the page containing `addr` itself counts as an unmapped
  /// read if absent.
  [[nodiscard]] std::uint32_t fetch32(Addr addr) const;

  /// Bulk copy out of / into memory, page-by-page.  Unmapped source pages
  /// read as zero and never count toward unmapped_reads (dumping a sparse
  /// image is legitimate); destination pages are allocated on demand.
  void read_block(Addr base, std::span<std::uint8_t> out) const;
  void write_block(Addr base, std::span<const std::uint8_t> bytes);

  /// Bulk-load a binary blob (e.g. an assembled program image).
  void load(Addr base, std::span<const std::uint8_t> bytes);
  void load_words(Addr base, std::span<const std::uint32_t> words);

  /// Copy out a range of bytes (unmapped pages read as zero).
  [[nodiscard]] std::vector<std::uint8_t> dump(Addr base, std::size_t len) const;

  /// Number of pages materialised so far.
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Map-shape generation counter: bumped when a page is mapped, on clear()
  /// and on move — i.e. whenever an outstanding PageRef could go stale.
  [[nodiscard]] std::uint64_t map_epoch() const { return map_epoch_; }

  /// Resolve the page containing `addr` for hoisted instruction fetches.
  /// Does not disturb the page-cache lanes or the access statistics: the
  /// caller is expected to hold the reference across many fetches (and to
  /// revalidate against map_epoch()), so per-access counters would lie.
  [[nodiscard]] PageRef page_ref(Addr addr) const {
    const Page* page = find_page(addr >> kPageBits);
    return PageRef{page == nullptr ? nullptr : page->data(), map_epoch_};
  }

  /// Drop all contents.
  void clear() {
    pages_.clear();
    invalidate_page_cache();
    ++map_epoch_;
  }

  /// Toggle the single-probe page-cache fast path.  Disabled, every access
  /// degenerates to one hash probe per byte — the seed implementation —
  /// which benchmarks use as the "before" reference.
  void set_fast_path_enabled(bool enabled) { fast_path_ = enabled; }
  [[nodiscard]] bool fast_path_enabled() const { return fast_path_; }

  /// Strict mode: scalar reads of unmapped pages throw std::out_of_range
  /// instead of silently returning 0 (block reads stay permissive).
  void set_strict_unmapped(bool strict) { strict_unmapped_ = strict; }
  [[nodiscard]] bool strict_unmapped() const { return strict_unmapped_; }

  [[nodiscard]] const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemStats{}; }
  [[nodiscard]] std::uint64_t unmapped_reads() const { return stats_.unmapped_reads; }

  /// Freeze the current contents into a copy-on-write image.  The live pages
  /// become shared with the image, so this memory's next write to any page
  /// clones it first; to keep the no-write-through-a-shared-page invariant,
  /// capture demotes every primed cache way to read-only (stat-neutral: a
  /// later write hit re-promotes without touching the hit/miss counters).
  [[nodiscard]] Image capture() const;

  /// Replace this memory's entire state with the image's: contents (shared,
  /// CoW), access statistics, fast-path/strict flags, and the page-cache and
  /// negative-cache tags, re-primed read-only against the restored pages
  /// without counting anything.  Bumps map_epoch() so every PageRef taken
  /// before the restore is stale and can never be dereferenced.
  void restore(const Image& image);

 private:
  /// Direct-mapped page-cache lanes: instruction fetches and data accesses
  /// get separate ways so a store-heavy loop cannot evict its own code page.
  enum Lane : unsigned { kDataLane = 0, kFetchLane = 1 };
  struct Way {
    Addr page_no = kNoPage;
    std::uint8_t* data = nullptr;
    /// True only when the page was exclusively owned when the way was primed
    /// for writing.  A write hit on a non-writable way re-resolves through
    /// touch_page(), which clones the page if a checkpoint (or a sibling
    /// fork) still shares it — the CoW guard.
    bool writable = false;
  };

  template <typename T>
  [[nodiscard]] T read_le(Addr addr) const {
    ++stats_.reads;
    const std::size_t offset = static_cast<std::size_t>(addr) & (kPageSize - 1);
    if (fast_path_ && offset + sizeof(T) <= kPageSize) [[likely]] {
      const std::uint8_t* page = lookup_read(addr >> kPageBits, kDataLane);
      if (page != nullptr) [[likely]] {
        return load_le<T>(page + offset);
      }
      note_unmapped(addr);
      return 0;
    }
    return read_cold<T>(addr);
  }

  template <typename T>
  void write_le(Addr addr, T value) {
    ++stats_.writes;
    const std::size_t offset = static_cast<std::size_t>(addr) & (kPageSize - 1);
    if (fast_path_ && offset + sizeof(T) <= kPageSize) [[likely]] {
      store_le(lookup_write(addr >> kPageBits) + offset, value);
      return;
    }
    write_cold(addr, value);
  }

  template <typename T>
  [[nodiscard]] static T load_le(const std::uint8_t* src) {
    if constexpr (std::endian::native == std::endian::little) {
      T value;
      std::memcpy(&value, src, sizeof(T));
      return value;
    } else {
      T value = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        value = static_cast<T>(value | (static_cast<T>(src[i]) << (8 * i)));
      }
      return value;
    }
  }

  template <typename T>
  static void store_le(std::uint8_t* dst, T value) {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, &value, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        dst[i] = static_cast<std::uint8_t>(value >> (8 * i));
      }
    }
  }

  /// Resolve a page for reading through the given cache lane; null when the
  /// page was never written.
  [[nodiscard]] const std::uint8_t* lookup_read(Addr page_no, Lane lane) const;
  /// Resolve (allocating on demand) a page for writing through the data lane.
  [[nodiscard]] std::uint8_t* lookup_write(Addr page_no);

  template <typename T>
  [[nodiscard]] T read_cold(Addr addr) const;
  template <typename T>
  void write_cold(Addr addr, T value);

  [[nodiscard]] std::uint8_t read8_slow(Addr addr) const;
  void note_unmapped(Addr addr) const;
  void invalidate_page_cache() const {
    for (auto& lane : ways_) lane.fill(Way{});
    neg_ways_.fill(kNoPage);
  }

  [[nodiscard]] const Page* find_page(Addr page_no) const;
  Page& touch_page(Addr page_no);

  /// Pages are shared_ptr so checkpoint images can share them (CoW): a page
  /// with use_count() > 1 is referenced by at least one Snapshot or sibling
  /// fork and must be cloned before mutation (touch_page enforces this).
  std::unordered_map<Addr, std::shared_ptr<Page>> pages_;
  mutable std::array<std::array<Way, kWays>, 2> ways_{};
  /// TLB-style negative cache: page numbers recently probed and found
  /// unmapped.  MMIO-heavy workloads poll device regions that never become
  /// RAM, and without this every such read walks the hash map.  Flushed
  /// whenever any page is mapped (allocation is rare; correctness over
  /// cleverness).
  mutable std::array<Addr, kNegWays> neg_ways_{[] {
    std::array<Addr, kNegWays> init{};
    init.fill(kNoPage);
    return init;
  }()};
  mutable MemStats stats_;
  std::uint64_t map_epoch_ = 0;
  bool fast_path_ = true;
  bool strict_unmapped_ = false;
};

/// Hoisted fetch-page probe shared by the ISS cores: sequential fetches
/// between taken branches stay on one 4 KiB page, so the page is resolved
/// once (lookup/refill) and revalidated with a page-number/epoch compare
/// per fetch instead of a full memory or bus access.  In-place stores are
/// always observed (PageRef reads live page bytes); map-shape changes are
/// caught by the epoch compare.
class FetchPageCache {
 public:
  /// Fast hit: the cached page is still valid (same page number, same map
  /// epoch) and the 4-byte window lies inside it.
  [[nodiscard]] bool lookup(Addr addr, std::uint32_t* window) const {
    const std::size_t offset =
        static_cast<std::size_t>(addr) & (Memory::kPageSize - 1);
    if (memory_ == nullptr || offset + 4 > Memory::kPageSize ||
        (addr >> Memory::kPageBits) != page_no_ ||
        page_.epoch != memory_->map_epoch()) {
      return false;
    }
    *window = page_.window32(offset);
    return true;
  }

  /// Install the page covering `addr` from `memory` and read the window.
  /// Fails (caller takes its slow path) on page straddles, unmapped pages,
  /// or when the memory's fast path is disabled for seed-mode benching.
  bool refill(const Memory& memory, Addr addr, std::uint32_t* window) {
    const std::size_t offset =
        static_cast<std::size_t>(addr) & (Memory::kPageSize - 1);
    if (!memory.fast_path_enabled() || offset + 4 > Memory::kPageSize) {
      return false;
    }
    const PageRef ref = memory.page_ref(addr);
    if (ref.data == nullptr) {
      return false;
    }
    memory_ = &memory;
    page_ = ref;
    page_no_ = addr >> Memory::kPageBits;
    *window = ref.window32(offset);
    return true;
  }

  /// Forget the cached page (used on checkpoint restore: the owning Memory
  /// may have been rebuilt).  Stat-neutral — the next fetch refills via
  /// page_ref(), which counts nothing.
  void invalidate() {
    memory_ = nullptr;
    page_ = PageRef{};
    page_no_ = ~Addr{0};
  }

 private:
  const Memory* memory_ = nullptr;
  PageRef page_{};
  Addr page_no_ = ~Addr{0};
};

}  // namespace titan::sim

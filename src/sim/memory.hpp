// Sparse byte-addressable memory used for every RAM/ROM in the modelled SoC.
//
// Backed by 4 KiB pages allocated on first touch, so a 64-bit address space
// costs only what the workload actually touches.  All accesses are
// little-endian, matching RISC-V.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace titan::sim {

class Memory {
 public:
  static constexpr std::size_t kPageBits = 12;
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;

  Memory() = default;

  // Non-copyable (pages can be large); movable.
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;
  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;

  [[nodiscard]] std::uint8_t read8(Addr addr) const;
  [[nodiscard]] std::uint16_t read16(Addr addr) const;
  [[nodiscard]] std::uint32_t read32(Addr addr) const;
  [[nodiscard]] std::uint64_t read64(Addr addr) const;

  void write8(Addr addr, std::uint8_t value);
  void write16(Addr addr, std::uint16_t value);
  void write32(Addr addr, std::uint32_t value);
  void write64(Addr addr, std::uint64_t value);

  /// Bulk-load a binary blob (e.g. an assembled program image).
  void load(Addr base, std::span<const std::uint8_t> bytes);
  void load_words(Addr base, std::span<const std::uint32_t> words);

  /// Copy out a range of bytes (allocating untouched pages as zero).
  [[nodiscard]] std::vector<std::uint8_t> dump(Addr base, std::size_t len) const;

  /// Number of pages materialised so far.
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Drop all contents.
  void clear() { pages_.clear(); }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  [[nodiscard]] const Page* find_page(Addr addr) const;
  Page& touch_page(Addr addr);

  std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

}  // namespace titan::sim

#include "sim/stats.hpp"

#include <algorithm>
#include <iomanip>

namespace titan::sim {

void StatSet::print(std::ostream& os) const {
  for (const auto& [k, v] : values_) {
    os << "  " << std::left << std::setw(40) << k << " " << v << "\n";
  }
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0) {}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    const double frac = (value - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(frac * static_cast<double>(buckets_.size()));
    idx = std::min(idx, buckets_.size() - 1);
    ++buckets_[idx];
  }
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = underflow_;
  if (seen > target) {
    return lo_;
  }
  const double bucket_width = (hi_ - lo_) / static_cast<double>(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return lo_ + bucket_width * (static_cast<double>(i) + 0.5);
    }
  }
  return hi_;
}

void Histogram::print(std::ostream& os, const std::string& title) const {
  os << title << ": n=" << count_ << " mean=" << mean() << " min=" << min_
     << " max=" << max_ << " p50=" << quantile(0.5) << " p95=" << quantile(0.95)
     << "\n";
}

}  // namespace titan::sim

// Deterministic pseudo-random number generation for workload synthesis.
//
// All stochastic behaviour in the repository (trace generators, failure
// injection, property-test schedules) flows through this xoshiro256**
// generator seeded explicitly, so every experiment is bit-reproducible.
#pragma once

#include <cstdint>

namespace titan::sim {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — small, fast, high-quality PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    return span == 0 ? next() : lo + next() % span;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace titan::sim

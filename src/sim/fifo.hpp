// Bounded FIFO with occupancy statistics, modelling a hardware queue.
//
// The CFI Queue in TitanCFI is a single-push-port FIFO sitting between the
// CVA6 commit stage and the CFI Log Writer (paper Sec. IV-B2).  This template
// is also reused for mailbox staging and trace buffering.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace titan::sim {

/// Occupancy statistics accumulated over the lifetime of a Fifo.
struct FifoStats {
  std::uint64_t pushes = 0;          ///< Successful push operations.
  std::uint64_t pops = 0;            ///< Successful pop operations.
  std::uint64_t rejected_pushes = 0; ///< Pushes attempted while full.
  std::size_t max_occupancy = 0;     ///< High-water mark.
  std::uint64_t occupancy_samples = 0;
  std::uint64_t occupancy_sum = 0;

  bool operator==(const FifoStats&) const = default;

  /// Mean occupancy over all sample() calls (0 if never sampled).
  [[nodiscard]] double mean_occupancy() const {
    return occupancy_samples == 0
               ? 0.0
               : static_cast<double>(occupancy_sum) /
                     static_cast<double>(occupancy_samples);
  }
};

/// Bounded FIFO.  Push fails (returns false) when full; pop returns
/// std::nullopt when empty.  Depth 0 is rejected at construction.
template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t depth) : depth_(depth) {
    if (depth == 0) {
      throw std::invalid_argument("Fifo depth must be >= 1");
    }
  }

  /// Attempt to enqueue. Returns false (and counts a rejection) when full.
  bool push(T value) {
    if (full()) {
      ++stats_.rejected_pushes;
      return false;
    }
    items_.push_back(std::move(value));
    ++stats_.pushes;
    stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
    return true;
  }

  /// Dequeue the oldest element, or nullopt when empty.
  std::optional<T> pop() {
    if (items_.empty()) {
      return std::nullopt;
    }
    T front = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    return front;
  }

  /// Peek at the oldest element without removing it.
  [[nodiscard]] const T* front() const {
    return items_.empty() ? nullptr : &items_.front();
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= depth_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t free_slots() const { return depth_ - items_.size(); }

  /// Record the current occupancy into the running statistics.  Called once
  /// per simulated cycle by the owning component.
  void sample() {
    ++stats_.occupancy_samples;
    stats_.occupancy_sum += items_.size();
  }

  /// Record `cycles` samples at the current (constant) occupancy in one step.
  /// The event-driven scheduler uses this to account for fast-forwarded
  /// cycles during which the occupancy provably did not change, keeping the
  /// statistics bit-identical to per-cycle sample() calls.
  void sample_n(std::uint64_t cycles) {
    stats_.occupancy_samples += cycles;
    stats_.occupancy_sum += cycles * items_.size();
  }

  [[nodiscard]] const FifoStats& stats() const { return stats_; }

  void clear() { items_.clear(); }

  /// Checkpoint support: queued items (oldest first, via `save_item`) plus
  /// the lifetime statistics.  Depth is config-derived and not serialized.
  template <typename SaveItem>
  void save_state(SnapshotWriter& writer, SaveItem&& save_item) const {
    writer.u64(items_.size());
    for (const T& item : items_) {
      save_item(writer, item);
    }
    writer.u64(stats_.pushes);
    writer.u64(stats_.pops);
    writer.u64(stats_.rejected_pushes);
    writer.u64(stats_.max_occupancy);
    writer.u64(stats_.occupancy_samples);
    writer.u64(stats_.occupancy_sum);
  }
  template <typename LoadItem>
  void load_state(SnapshotReader& reader, LoadItem&& load_item) {
    items_.clear();
    const std::uint64_t count = reader.u64();
    if (count > depth_) {
      throw SnapshotError("fifo: snapshot occupancy exceeds depth");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      items_.push_back(load_item(reader));
    }
    stats_.pushes = reader.u64();
    stats_.pops = reader.u64();
    stats_.rejected_pushes = reader.u64();
    stats_.max_occupancy = static_cast<std::size_t>(reader.u64());
    stats_.occupancy_samples = reader.u64();
    stats_.occupancy_sum = reader.u64();
  }

 private:
  std::size_t depth_;
  std::deque<T> items_;
  FifoStats stats_;
};

}  // namespace titan::sim

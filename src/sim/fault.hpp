// Seeded, deterministic fault-injection plans.
//
// A FaultPlan is a list of scheduled faults, each firing at a named site the
// moment that site's event ordinal reaches the spec's `nth` (the nth doorbell
// ring, the nth MAC'd burst, the nth CFI-queue push attempt, ...).  Triggers
// are indexed by event ordinal — never by cycle — because the event streams
// of the lock-step and event-driven co-simulation engines are identical while
// their per-cycle schedules are not: an ordinal-indexed plan perturbs both
// engines in exactly the same way, which is what keeps the engine-equivalence
// witness bit-exact under every plan (tests/engine_equivalence_test.cpp).
//
// Plans serialize into the scenario fingerprint (Scenario::serialize), so a
// shard merge of faulted sweeps is guarded by the exact plan the simulations
// ran with, and a plan replayed from its serialized form reproduces the run
// byte for byte.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace titan::sim {

/// Named injection sites across the CFI pipeline.
enum class FaultSite : unsigned {
  kDoorbellDrop = 0,   ///< Nth doorbell ring is lost on the interconnect.
  kDoorbellDuplicate,  ///< Nth doorbell ring is delivered twice.
  kMacCorrupt,         ///< One bit of the nth burst MAC flips in transit.
  kQueueOverflow,      ///< Queue reports full for `param` push attempts.
  kMemBitFlip,         ///< Nth queued log passes a corrupted ECC codeword.
  kRotStall,           ///< RoT clock freezes for `param` cycles at a doorbell.
};
inline constexpr std::size_t kFaultSiteCount = 6;

[[nodiscard]] std::string_view fault_site_name(FaultSite site);
[[nodiscard]] std::optional<FaultSite> fault_site_from_name(
    std::string_view name);

/// One scheduled fault: fire at `site` when its event ordinal (0-based)
/// reaches `nth`.  `param` is site-specific:
///   kMacCorrupt     — bit index into the 256-bit transmitted MAC;
///   kQueueOverflow  — number of consecutive push attempts that see a full
///                     queue (>= 1);
///   kMemBitFlip     — bit 0 selects a double-bit (uncorrectable) flip, the
///                     remaining bits pick the codeword position(s);
///   kRotStall       — stall width in RoT cycles (>= 1);
///   doorbell sites  — unused.
struct FaultSpec {
  FaultSite site = FaultSite::kDoorbellDrop;
  std::uint64_t nth = 0;
  std::uint64_t param = 0;

  bool operator==(const FaultSpec&) const = default;
};

/// An ordered fault schedule.  Value type: copyable, comparable, and
/// round-trippable through serialize()/parse().
struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  [[nodiscard]] bool has_site(FaultSite site) const;

  /// Deterministic textual form, e.g. "doorbell_drop@1#0+mac_corrupt@0#17"
  /// ("" for the empty plan).  Safe to embed in a scenario serialization.
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); throws std::invalid_argument on malformed text
  /// (unknown site, missing ordinal, trailing junk).
  [[nodiscard]] static FaultPlan parse(std::string_view text);

  /// Seeded random plan of `count` faults with small ordinals and bounded,
  /// site-appropriate parameters — the fuzz-harness generator.  The same
  /// seed always yields the same plan (sim::Rng).
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, unsigned count);

  bool operator==(const FaultPlan&) const = default;
};

/// Detection-latency histogram geometry: log2 buckets
/// [0], [1], [2,3], [4,7], ... with the last bucket open-ended.
inline constexpr std::size_t kLatencyBuckets = 8;
[[nodiscard]] std::size_t latency_bucket(std::uint64_t latency_cycles);
/// Same geometry with a caller-chosen bucket count (last bucket open-ended).
/// The serving layer reuses this for its request-latency histograms, so one
/// bucketing rule covers detection latencies and service latencies alike.
[[nodiscard]] std::size_t latency_bucket(std::uint64_t value,
                                         std::size_t bucket_count);

/// The resilience block of a run result: what was injected, what the
/// degradation machinery caught, and how much time the system spent in
/// degraded operation.  Deterministic (a pure function of scenario + plan),
/// so it participates in the cross-engine bit-exactness checks.
struct ResilienceStats {
  /// Faults injected / detected, indexed by FaultSite.
  std::array<std::uint64_t, kFaultSiteCount> injected{};
  std::array<std::uint64_t, kFaultSiteCount> detected{};
  /// Injection-to-detection latency (host cycles), log2 buckets.
  std::array<std::uint64_t, kLatencyBuckets> detection_latency{};
  std::uint64_t doorbell_retries = 0;  ///< Watchdog re-rings (backoff).
  std::uint64_t mac_retries = 0;       ///< Burst retransmissions on MAC fail.
  std::uint64_t spurious_completions = 0;  ///< Idle-writer completions eaten.
  /// CF logs that retired unchecked (fail-open overflow drops and
  /// uncorrectable ECC words under the fail-open policy).
  std::uint64_t dropped_logs = 0;
  /// Dropped logs that were returns — the events the paper's shadow-stack
  /// policy enforces, i.e. potential missed violations.  Zero by
  /// construction under the fail-closed policy.
  std::uint64_t false_negatives = 0;
  /// Cycles spent in degraded operation: overflow back-pressure stalls,
  /// timed-out doorbell wait windows, and RoT stall width.
  std::uint64_t degraded_cycles = 0;

  [[nodiscard]] std::uint64_t total_injected() const;
  [[nodiscard]] std::uint64_t total_detected() const;

  bool operator==(const ResilienceStats&) const = default;
};

}  // namespace titan::sim

// Minimal JSON parser for the wire protocol (the read-side complement of
// JsonWriter).
//
// The daemon's request envelopes arrive as one JSON object per line; this
// parser turns a line into a JsonValue tree with enough fidelity for the
// api::wire layer: objects (insertion-ordered), arrays, strings (with the
// standard escapes incl. \uXXXX for the BMP), numbers (kept as both int64
// and double views), booleans, and null.  Errors throw JsonParseError with
// the byte offset and the offending token, which the wire layer surfaces in
// its structured `bad_request` responses — a malformed frame names what was
// wrong instead of being dropped on the floor.
//
// Deliberately NOT a general-purpose JSON library: no streaming, no
// comments, no NaN/Inf, inputs are bounded by the server's frame limit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace titan::sim {

/// Malformed JSON text.  `offset` is the byte position of the error.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::string message, std::size_t offset)
      : std::runtime_error(std::move(message)), offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value.  Value type; object members keep insertion order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse exactly one JSON value spanning the whole input (trailing
  /// whitespace allowed, trailing tokens rejected).  Throws JsonParseError.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on a kind mismatch (wire-layer
  /// callers check kind() or use the lookup helpers below).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Integral view of a number; throws when the number has a fractional
  /// part or does not fit an int64.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  /// Object member by key, or nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Ordered object members (empty when not an object).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool number_is_integral_ = false;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escape `text` as the contents of a JSON string literal (quotes,
/// backslashes, and all control characters — including newlines, so the
/// result is always single-line-safe for the line-delimited wire protocol).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace titan::sim

#include "sim/memory.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace titan::sim {

namespace {

std::string hex_addr(Addr addr) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = (addr >> shift) & 0xF;
    if (nibble != 0 || started || shift == 0) {
      out.push_back(kHex[nibble]);
      started = true;
    }
  }
  return out;
}

}  // namespace

const Memory::Page* Memory::find_page(Addr page_no) const {
  auto it = pages_.find(page_no);
  return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page& Memory::touch_page(Addr page_no) {
  auto& slot = pages_[page_no];
  if (!slot) {
    slot = std::make_shared<Page>();
    slot->fill(0);
    // The map changed shape: retire negative-cache entries (this very page
    // may be cached as absent) and stale PageRefs.
    neg_ways_.fill(kNoPage);
    ++map_epoch_;
  } else if (slot.use_count() > 1) {
    // Copy-on-write: a checkpoint image (or a sibling fork restored from
    // one) still references this page.  Clone before mutating, repoint any
    // cache way that holds the shared copy, and retire outstanding PageRefs
    // via the epoch (stat-neutral: FetchPageCache refills are uncounted).
    slot = std::make_shared<Page>(*slot);
    for (auto& lane : ways_) {
      Way& way = lane[static_cast<std::size_t>(page_no) & (kWays - 1)];
      if (way.page_no == page_no) {
        way.data = slot->data();
      }
    }
    ++map_epoch_;
  }
  return *slot;
}

const std::uint8_t* Memory::lookup_read(Addr page_no, Lane lane) const {
  Way& way = ways_[lane][static_cast<std::size_t>(page_no) & (kWays - 1)];
  if (way.page_no == page_no) {
    ++stats_.page_cache_hits;
    return way.data;
  }
  Addr& neg = neg_ways_[static_cast<std::size_t>(page_no) & (kNegWays - 1)];
  if (neg == page_no) {
    ++stats_.neg_cache_hits;
    return nullptr;  // Known-unmapped; skip the hash walk.
  }
  ++stats_.page_cache_misses;
  const Page* page = find_page(page_no);
  if (page == nullptr) {
    // Cache the absence; touch_page flushes this when any page is mapped.
    neg = page_no;
    return nullptr;
  }
  way.page_no = page_no;
  way.data = const_cast<std::uint8_t*>(page->data());
  way.writable = false;
  return way.data;
}

std::uint8_t* Memory::lookup_write(Addr page_no) {
  Way& way = ways_[kDataLane][static_cast<std::size_t>(page_no) & (kWays - 1)];
  if (way.page_no == page_no) {
    ++stats_.page_cache_hits;
    if (way.writable) [[likely]] {
      return way.data;
    }
    // Hit on a read-primed (possibly checkpoint-shared) way: resolve through
    // touch_page, which clones the page if it is still shared, then promote
    // the way.  Counts exactly like the plain hit it replaces.
    Page& page = touch_page(page_no);
    way.data = page.data();
    way.writable = true;
    return way.data;
  }
  ++stats_.page_cache_misses;
  Page& page = touch_page(page_no);
  way.page_no = page_no;
  way.data = page.data();
  way.writable = true;
  return way.data;
}

void Memory::note_unmapped(Addr addr) const {
  ++stats_.unmapped_reads;
  if (strict_unmapped_) {
    throw std::out_of_range("Memory: read of unmapped address " +
                            hex_addr(addr));
  }
}

std::uint8_t Memory::read8_slow(Addr addr) const {
  const Page* page = find_page(addr >> kPageBits);
  if (page == nullptr) {
    note_unmapped(addr);
    return 0;
  }
  return (*page)[addr & (kPageSize - 1)];
}

template <typename T>
T Memory::read_cold(Addr addr) const {
  if (fast_path_ && sizeof(T) > 1) {
    ++stats_.straddles;
  }
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value = static_cast<T>(value |
                           (static_cast<T>(read8_slow(addr + i)) << (8 * i)));
  }
  return value;
}

template <typename T>
void Memory::write_cold(Addr addr, T value) {
  if (fast_path_ && sizeof(T) > 1) {
    ++stats_.straddles;
  }
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    touch_page((addr + i) >> kPageBits)[(addr + i) & (kPageSize - 1)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

template std::uint8_t Memory::read_cold<std::uint8_t>(Addr) const;
template std::uint16_t Memory::read_cold<std::uint16_t>(Addr) const;
template std::uint32_t Memory::read_cold<std::uint32_t>(Addr) const;
template std::uint64_t Memory::read_cold<std::uint64_t>(Addr) const;
template void Memory::write_cold<std::uint8_t>(Addr, std::uint8_t);
template void Memory::write_cold<std::uint16_t>(Addr, std::uint16_t);
template void Memory::write_cold<std::uint32_t>(Addr, std::uint32_t);
template void Memory::write_cold<std::uint64_t>(Addr, std::uint64_t);

std::uint32_t Memory::fetch32(Addr addr) const {
  ++stats_.fetches;
  const std::size_t offset = static_cast<std::size_t>(addr) & (kPageSize - 1);
  if (fast_path_ && offset + 4 <= kPageSize) [[likely]] {
    const std::uint8_t* page = lookup_read(addr >> kPageBits, kFetchLane);
    if (page != nullptr) [[likely]] {
      return load_le<std::uint32_t>(page + offset);
    }
    note_unmapped(addr);
    return 0;
  }
  // Page-straddling (or slow-mode) fetch: the low half decides whether the
  // window is an instruction at all, so only it participates in unmapped
  // accounting; the high half is a speculative overshoot.
  if (offset + 4 > kPageSize) {
    ++stats_.straddles;
  }
  const Page* low_page = find_page(addr >> kPageBits);
  if (low_page == nullptr) {
    note_unmapped(addr);
    return 0;
  }
  std::uint32_t window = (*low_page)[addr & (kPageSize - 1)];
  for (std::size_t i = 1; i < 4; ++i) {
    const Page* page = find_page((addr + i) >> kPageBits);
    const std::uint8_t byte =
        page == nullptr ? 0 : (*page)[(addr + i) & (kPageSize - 1)];
    window |= static_cast<std::uint32_t>(byte) << (8 * i);
  }
  return window;
}

void Memory::read_block(Addr base, std::span<std::uint8_t> out) const {
  stats_.bulk_bytes += out.size();
  std::size_t done = 0;
  while (done < out.size()) {
    const Addr addr = base + done;
    const std::size_t offset = static_cast<std::size_t>(addr) & (kPageSize - 1);
    const std::size_t chunk = std::min(out.size() - done, kPageSize - offset);
    const Page* page = find_page(addr >> kPageBits);
    if (page == nullptr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      std::memcpy(out.data() + done, page->data() + offset, chunk);
    }
    done += chunk;
  }
}

void Memory::write_block(Addr base, std::span<const std::uint8_t> bytes) {
  stats_.bulk_bytes += bytes.size();
  std::size_t done = 0;
  while (done < bytes.size()) {
    const Addr addr = base + done;
    const std::size_t offset = static_cast<std::size_t>(addr) & (kPageSize - 1);
    const std::size_t chunk = std::min(bytes.size() - done, kPageSize - offset);
    std::memcpy(touch_page(addr >> kPageBits).data() + offset,
                bytes.data() + done, chunk);
    done += chunk;
  }
}

void Memory::load(Addr base, std::span<const std::uint8_t> bytes) {
  write_block(base, bytes);
}

void Memory::load_words(Addr base, std::span<const std::uint32_t> words) {
  std::vector<std::uint8_t> bytes(words.size() * 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    store_le(bytes.data() + 4 * i, words[i]);
  }
  write_block(base, bytes);
}

std::vector<std::uint8_t> Memory::dump(Addr base, std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  read_block(base, out);
  return out;
}

Memory::Image Memory::capture() const {
  Image image;
  image.stats = stats_;
  image.fast_path = fast_path_;
  image.strict_unmapped = strict_unmapped_;
  image.pages.reserve(pages_.size());
  for (const auto& [page_no, page] : pages_) {
    image.pages.emplace_back(page_no, page);
  }
  std::sort(image.pages.begin(), image.pages.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (unsigned lane = 0; lane < 2; ++lane) {
    for (std::size_t i = 0; i < kWays; ++i) {
      image.way_tags[lane][i] = ways_[lane][i].page_no;
      // Every page is now shared with the image: demote the ways so the next
      // write hit re-resolves (and CoW-clones) through touch_page.
      ways_[lane][i].writable = false;
    }
  }
  image.neg_tags = neg_ways_;
  return image;
}

void Memory::restore(const Image& image) {
  pages_.clear();
  for (const auto& [page_no, page] : image.pages) {
    // Shared with the image (and any sibling restored from it); the CoW
    // guard in touch_page keeps the image's copy immutable.
    pages_.emplace(page_no, std::const_pointer_cast<Page>(page));
  }
  stats_ = image.stats;
  fast_path_ = image.fast_path;
  strict_unmapped_ = image.strict_unmapped;
  invalidate_page_cache();
  // Re-prime the page-cache and negative-cache tags exactly as captured —
  // read-only, counting nothing — so the warm run's cache-stat lanes
  // continue bit-exactly where the captured run left off.
  for (unsigned lane = 0; lane < 2; ++lane) {
    for (std::size_t i = 0; i < kWays; ++i) {
      const Addr tag = image.way_tags[lane][i];
      if (tag == kNoPage) {
        continue;
      }
      const Page* page = find_page(tag);
      if (page == nullptr) {
        continue;  // Hand-built image with a dangling tag; leave the way cold.
      }
      ways_[lane][i] =
          Way{tag, const_cast<std::uint8_t*>(page->data()), false};
    }
  }
  neg_ways_ = image.neg_tags;
  // Everything a caller cached against the old map shape — PageRef holders,
  // FetchPageCache entries — is now stale and must revalidate.
  ++map_epoch_;
}

}  // namespace titan::sim

#include "sim/memory.hpp"

#include <cstring>

namespace titan::sim {

const Memory::Page* Memory::find_page(Addr addr) const {
  auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page& Memory::touch_page(Addr addr) {
  auto& slot = pages_[addr >> kPageBits];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

std::uint8_t Memory::read8(Addr addr) const {
  const Page* page = find_page(addr);
  return page == nullptr ? 0 : (*page)[addr & (kPageSize - 1)];
}

std::uint16_t Memory::read16(Addr addr) const {
  return static_cast<std::uint16_t>(read8(addr)) |
         static_cast<std::uint16_t>(static_cast<std::uint16_t>(read8(addr + 1)) << 8);
}

std::uint32_t Memory::read32(Addr addr) const {
  return static_cast<std::uint32_t>(read16(addr)) |
         (static_cast<std::uint32_t>(read16(addr + 2)) << 16);
}

std::uint64_t Memory::read64(Addr addr) const {
  return static_cast<std::uint64_t>(read32(addr)) |
         (static_cast<std::uint64_t>(read32(addr + 4)) << 32);
}

void Memory::write8(Addr addr, std::uint8_t value) {
  touch_page(addr)[addr & (kPageSize - 1)] = value;
}

void Memory::write16(Addr addr, std::uint16_t value) {
  write8(addr, static_cast<std::uint8_t>(value));
  write8(addr + 1, static_cast<std::uint8_t>(value >> 8));
}

void Memory::write32(Addr addr, std::uint32_t value) {
  write16(addr, static_cast<std::uint16_t>(value));
  write16(addr + 2, static_cast<std::uint16_t>(value >> 16));
}

void Memory::write64(Addr addr, std::uint64_t value) {
  write32(addr, static_cast<std::uint32_t>(value));
  write32(addr + 4, static_cast<std::uint32_t>(value >> 32));
}

void Memory::load(Addr base, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    write8(base + i, bytes[i]);
  }
}

void Memory::load_words(Addr base, std::span<const std::uint32_t> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    write32(base + 4 * i, words[i]);
  }
}

std::vector<std::uint8_t> Memory::dump(Addr base, std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = read8(base + i);
  }
  return out;
}

}  // namespace titan::sim

// Shard-merge aggregation for process-level sweep sharding.
//
// A sweep bench run with `--shard=i/K --shard_json=PATH` evaluates only the
// ShardPlanner-owned slice of its point grid and writes a *partial report*:
// the canonical document header (bench name, point count, grid hash, config
// fingerprint), a shard manifest (index/count and the owned index range),
// and the owned rows.  tools/bench_merge feeds all K partials through
// merge_shard_documents(), which
//
//   1. validates the manifests — every header field must match across
//      shards, indices 0..K-1 must each appear exactly once, each owned
//      range must equal the ShardPlanner partition (a skewed shard means two
//      processes disagreed about the plan), and each partial must carry
//      exactly range-many rows;
//   2. splices the rows arrays verbatim, in shard order.
//
// Because the partition is contiguous-by-index and each row is a pure
// function of its grid index, the merged document is byte-identical to what
// a serial single-process `--json=PATH` run writes — the property the CI
// determinism diff (and the paper-table reproduction guarantee) rests on.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sweep.hpp"

namespace titan::sim {

/// FNV-1a 64-bit over `data`; the stable identity hash behind grid_hash and
/// config_fingerprint (no external deps, cheap, and good enough to detect a
/// shard built from a different grid or configuration).
[[nodiscard]] std::uint64_t fingerprint64(std::string_view data);

/// fingerprint64 rendered as 16 lowercase hex digits.
[[nodiscard]] std::string fingerprint_hex(std::string_view data);

/// The deterministic identity of one sweep report.  Everything here must be
/// a pure function of the grid and configuration — never wall-clock, thread
/// count, or host properties — so that shard partials and the serial
/// document agree byte-for-byte.
struct SweepDocHeader {
  std::string bench;               ///< e.g. "table2", "fig1".
  std::uint64_t total_points = 0;  ///< Size of the full grid.
  std::string grid_hash;           ///< fingerprint_hex of the point list.
  std::string config_fingerprint;  ///< fingerprint_hex of the fixed config.
};

/// Emits one rows-array element (begin_object()...end_object()) for grid
/// index `index`.
using RowEmitter = std::function<void(JsonWriter&, std::size_t index)>;

/// Canonical full document: what a serial single-process `--json=PATH` run
/// writes, and what merging K partials reconstructs.
[[nodiscard]] std::string render_full_document(const SweepDocHeader& header,
                                               const RowEmitter& emit_row);

/// Shard partial: canonical header + shard manifest + the rows owned by
/// ShardPlanner(header.total_points, shard.count).range(shard.index).
[[nodiscard]] std::string render_shard_document(const SweepDocHeader& header,
                                                const ShardSpec& shard,
                                                const RowEmitter& emit_row);

/// Write `document` plus the canonical trailing newline to `path`; false on
/// any stream error.  Every report file (partial, full, and merged) goes
/// through here, so the on-disk byte format the determinism diff compares
/// has exactly one definition.
[[nodiscard]] bool write_document(const std::string& path,
                                  std::string_view document);

struct MergeResult {
  bool ok = false;
  std::string error;   ///< Loud description of the first validation failure.
  std::string merged;  ///< Canonical full document when ok.
};

/// Merge shard partial documents (accepted in any order).
[[nodiscard]] MergeResult merge_shard_documents(
    const std::vector<std::string>& documents);

/// File-based wrapper: loads each path and merges.  Errors mention the
/// offending path.
[[nodiscard]] MergeResult merge_shard_files(
    const std::vector<std::string>& paths);

}  // namespace titan::sim

#include "sim/snapshot.hpp"

#include <string_view>

#include "sim/shard_merge.hpp"

namespace titan::sim {

namespace {

/// Render the payload (everything after the blob header) for one snapshot.
/// seal(), to_blob() and from_blob() all agree on this encoding, and the
/// fingerprint is FNV-1a over exactly these bytes.
std::vector<std::uint8_t> render_payload(const Snapshot& snapshot) {
  SnapshotWriter writer;
  writer.str(snapshot.scenario);
  writer.u64(snapshot.cycle);
  writer.u64(snapshot.memories.size());
  for (const Memory::Image& image : snapshot.memories) {
    write_memory_image(writer, image);
  }
  writer.bytes(snapshot.state);
  writer.u64(snapshot.log_words.size());
  for (const std::uint64_t word : snapshot.log_words) {
    writer.u64(word);
  }
  return writer.take();
}

std::uint64_t payload_fingerprint(std::span<const std::uint8_t> payload) {
  return fingerprint64(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size()));
}

}  // namespace

void write_memory_image(SnapshotWriter& writer, const Memory::Image& image) {
  writer.u64(image.pages.size());
  for (const auto& [page_no, page] : image.pages) {
    writer.u64(page_no);
    writer.raw(std::span<const std::uint8_t>(page->data(), page->size()));
  }
  writer.u64(image.stats.reads);
  writer.u64(image.stats.writes);
  writer.u64(image.stats.fetches);
  writer.u64(image.stats.page_cache_hits);
  writer.u64(image.stats.page_cache_misses);
  writer.u64(image.stats.straddles);
  writer.u64(image.stats.unmapped_reads);
  writer.u64(image.stats.bulk_bytes);
  writer.u64(image.stats.neg_cache_hits);
  for (const auto& lane : image.way_tags) {
    for (const Addr tag : lane) {
      writer.u64(tag);
    }
  }
  for (const Addr tag : image.neg_tags) {
    writer.u64(tag);
  }
  writer.boolean(image.fast_path);
  writer.boolean(image.strict_unmapped);
}

Memory::Image read_memory_image(SnapshotReader& reader) {
  Memory::Image image;
  const std::uint64_t page_count = reader.u64();
  image.pages.reserve(static_cast<std::size_t>(page_count));
  Addr last_page_no = 0;
  for (std::uint64_t i = 0; i < page_count; ++i) {
    const Addr page_no = reader.u64();
    if (i > 0 && page_no <= last_page_no) {
      throw SnapshotError("snapshot: memory image pages out of order");
    }
    last_page_no = page_no;
    auto page = std::make_shared<Memory::Page>();
    reader.raw(std::span<std::uint8_t>(page->data(), page->size()));
    image.pages.emplace_back(page_no, std::move(page));
  }
  image.stats.reads = reader.u64();
  image.stats.writes = reader.u64();
  image.stats.fetches = reader.u64();
  image.stats.page_cache_hits = reader.u64();
  image.stats.page_cache_misses = reader.u64();
  image.stats.straddles = reader.u64();
  image.stats.unmapped_reads = reader.u64();
  image.stats.bulk_bytes = reader.u64();
  image.stats.neg_cache_hits = reader.u64();
  for (auto& lane : image.way_tags) {
    for (Addr& tag : lane) {
      tag = reader.u64();
    }
  }
  for (Addr& tag : image.neg_tags) {
    tag = reader.u64();
  }
  image.fast_path = reader.boolean();
  image.strict_unmapped = reader.boolean();
  return image;
}

void Snapshot::seal() { fingerprint = payload_fingerprint(render_payload(*this)); }

std::vector<std::uint8_t> Snapshot::to_blob() const {
  const std::vector<std::uint8_t> payload = render_payload(*this);
  SnapshotWriter writer;
  writer.u32(kMagic);
  writer.u32(kVersion);
  writer.u64(payload_fingerprint(payload));
  writer.raw(payload);
  return writer.take();
}

Snapshot Snapshot::from_blob(std::span<const std::uint8_t> blob) {
  SnapshotReader header(blob);
  if (blob.size() < 16) {
    throw SnapshotError("snapshot: blob shorter than header");
  }
  if (header.u32() != kMagic) {
    throw SnapshotError("snapshot: bad magic (not a snapshot blob)");
  }
  const std::uint32_t version = header.u32();
  if (version != kVersion) {
    throw SnapshotError("snapshot: unsupported format version " +
                        std::to_string(version));
  }
  const std::uint64_t stated = header.u64();
  const std::span<const std::uint8_t> payload = blob.subspan(16);
  if (payload_fingerprint(payload) != stated) {
    throw SnapshotError("snapshot: payload fingerprint mismatch (corrupt or "
                        "tampered blob)");
  }

  Snapshot snapshot;
  snapshot.fingerprint = stated;
  SnapshotReader reader(payload);
  snapshot.scenario = reader.str();
  snapshot.cycle = reader.u64();
  const std::uint64_t memory_count = reader.u64();
  snapshot.memories.reserve(static_cast<std::size_t>(memory_count));
  for (std::uint64_t i = 0; i < memory_count; ++i) {
    snapshot.memories.push_back(read_memory_image(reader));
  }
  snapshot.state = reader.bytes();
  const std::uint64_t log_count = reader.u64();
  snapshot.log_words.reserve(static_cast<std::size_t>(log_count));
  for (std::uint64_t i = 0; i < log_count; ++i) {
    snapshot.log_words.push_back(reader.u64());
  }
  if (!reader.done()) {
    throw SnapshotError("snapshot: trailing bytes after payload");
  }
  return snapshot;
}

}  // namespace titan::sim

// Core scalar types shared by every simulation component.
#pragma once

#include <cstdint>
#include <limits>

namespace titan::sim {

/// Simulation time, measured in core clock cycles.
using Cycle = std::uint64_t;

/// Physical address in the SoC address space.
using Addr = std::uint64_t;

/// Sentinel for "no cycle scheduled".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

}  // namespace titan::sim

// Decoded-instruction cache shared by the CVA6 and Ibex core models.
//
// Both ISS front-ends used to run every fetched window through rv::decode —
// a large switch plus RVC expansion — on every dynamic instruction.  Decode
// is a pure function of the 32-bit fetch window (and XLEN), so a
// direct-mapped, PC-indexed cache whose entries are *validated against the
// raw encoding* skips it entirely in steady state.
//
// The raw-encoding tag makes invalidation exact and automatic: a store that
// rewrites an instruction, a Memory::load that replaces an image, or any
// other code mutation changes the fetched window, misses the tag compare,
// and re-decodes.  (Two PCs aliasing one slot with identical encodings may
// share an entry — harmless, since decode depends only on the encoding.)
// Compressed windows are normalised to their low 16 bits before tagging so
// an RVC instruction hits regardless of what follows it in memory.
#pragma once

#include <cstdint>
#include <vector>

#include "rv/decode.hpp"
#include "rv/isa.hpp"
#include "sim/snapshot.hpp"

namespace titan::sim {

class DecodeCache {
 public:
  static constexpr std::size_t kDefaultEntries = 8192;

  explicit DecodeCache(rv::Xlen xlen, std::size_t entries = kDefaultEntries)
      : xlen_(xlen), mask_(round_up_pow2(entries) - 1),
        entries_(round_up_pow2(entries)) {}

  /// Return the decoded form of the fetch window at `pc`, consulting the
  /// cache first.  The reference stays valid until the entry is evicted, so
  /// callers must copy it if they retain it across further decodes.
  [[nodiscard]] const rv::Inst& decode(std::uint64_t pc, std::uint32_t window) {
    const std::uint32_t key = (window & 3) == 3 ? window : (window & 0xFFFF);
    // PCs are at least 2-byte aligned; drop the dead bit before indexing.
    Entry& entry = entries_[(pc >> 1) & mask_];
    if (entry.valid && entry.key == key) {
      ++hits_;
      return entry.inst;
    }
    ++misses_;
    entry.inst = rv::decode(key, xlen_);
    entry.key = key;
    entry.valid = true;
    return entry.inst;
  }

  void flush() {
    for (Entry& entry : entries_) entry.valid = false;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Decodes skipped thanks to the cache (the bench counter).
  [[nodiscard]] std::uint64_t decodes_avoided() const { return hits_; }
  void reset_stats() { hits_ = misses_ = 0; }

  /// Checkpoint support.  Entries are stored as (slot, key) pairs only:
  /// `inst` is by invariant exactly rv::decode(key, xlen_), so load_state
  /// re-decodes instead of serializing decoded forms — smaller blobs, and a
  /// key/inst skew can never be smuggled in through a snapshot.  Geometry
  /// (xlen, entry count) is config-derived and not serialized.
  void save_state(SnapshotWriter& writer) const {
    writer.u64(hits_);
    writer.u64(misses_);
    std::uint64_t valid = 0;
    for (const Entry& entry : entries_) valid += entry.valid ? 1 : 0;
    writer.u64(valid);
    for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
      if (entries_[slot].valid) {
        writer.u64(slot);
        writer.u32(entries_[slot].key);
      }
    }
  }
  void load_state(SnapshotReader& reader) {
    hits_ = reader.u64();
    misses_ = reader.u64();
    flush();
    const std::uint64_t valid = reader.u64();
    for (std::uint64_t i = 0; i < valid; ++i) {
      const std::uint64_t slot = reader.u64();
      if (slot >= entries_.size()) {
        throw SnapshotError("decode cache: slot out of range");
      }
      Entry& entry = entries_[slot];
      entry.key = reader.u32();
      entry.inst = rv::decode(entry.key, xlen_);
      entry.valid = true;
    }
  }

 private:
  struct Entry {
    std::uint32_t key = 0;
    bool valid = false;
    rv::Inst inst;
  };

  [[nodiscard]] static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  rv::Xlen xlen_;
  std::size_t mask_;
  std::vector<Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace titan::sim

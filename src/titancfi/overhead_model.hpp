// Trace-driven CFI overhead model (paper Sec. V-C).
//
// "Slowdown is computed by simulating the RTL of the reference SoC and
//  extracting the cycle-accurate execution trace ... Then, we feed the
//  obtained traces to a trace-driven model which emulates the latency
//  required for CFI enforcement."
//
// The model replays the commit cycles of CFI-relevant instructions through
// the queue/log-writer/RoT service chain:
//
//   * each CF instruction, at its (stall-shifted) commit cycle, needs a free
//     CFI Queue slot; when the queue holds `queue_depth` unpopped logs the
//     commit stage stalls until the Log Writer pops the oldest one;
//   * the queue has a single write port, so two CF commits can never land in
//     the same cycle (second one slips by >= 1 cycle, Sec. IV-B2);
//   * the service chain is sequential: pop -> transport (mailbox beats) ->
//     RoT check; the next pop starts only after the verdict is read back
//     (Sec. IV-B3), so per-log service time = transport + check latency.
//
// Every commit stall shifts the whole downstream trace, which is exactly
// what inhibiting the commit stage does to an in-order core.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cva6/scoreboard.hpp"
#include "sim/types.hpp"

namespace titan::cfi {

using sim::Cycle;

struct OverheadConfig {
  std::size_t queue_depth = 8;
  /// RoT firmware check latency per control-flow operation (paper Sec. V-C:
  /// 267 = IRQ firmware, 112 = Polling, 73 = Optimized RoT).
  std::uint32_t check_latency = 73;
  /// Fixed hardware transport cost per log: queue pop + 4 data beats +
  /// doorbell + result read on the AXI fabric.
  std::uint32_t transport_cycles = 7;
  /// When true, the run ends only after the last pending check completes
  /// (synchronous semantics); the paper's numbers are commit-side, so the
  /// default matches that.
  bool drain_at_end = false;
};

struct OverheadResult {
  Cycle baseline_cycles = 0;
  Cycle cfi_cycles = 0;
  std::uint64_t cf_count = 0;
  std::uint64_t stall_events = 0;    ///< CF commits that had to wait.
  Cycle stall_cycles = 0;            ///< Total commit-shift introduced.
  std::size_t max_queue_occupancy = 0;

  /// Percent slowdown relative to the baseline run.
  [[nodiscard]] double slowdown_percent() const {
    if (baseline_cycles == 0) {
      return 0.0;
    }
    return 100.0 *
           static_cast<double>(cfi_cycles - baseline_cycles) /
           static_cast<double>(baseline_cycles);
  }
};

/// Replay a list of CF commit cycles (sorted, duplicates allowed — dual
/// commit) against the CFI service chain.
[[nodiscard]] OverheadResult simulate_cf_cycles(
    std::span<const Cycle> cf_commit_cycles, Cycle baseline_total,
    const OverheadConfig& config);

/// Convenience: extract the CFI-relevant commits from a full trace.
[[nodiscard]] OverheadResult simulate_trace(
    const std::vector<cva6::CommitRecord>& trace, Cycle baseline_total,
    const OverheadConfig& config);

}  // namespace titan::cfi

#include "titancfi/rot_subsystem.hpp"

#include <algorithm>

namespace titan::cfi {

namespace {

std::uint32_t hop_latency(RotFabric fabric) {
  return fabric == RotFabric::kBaseline ? 3 : 0;
}

std::uint32_t bridge_latency(RotFabric fabric) {
  return fabric == RotFabric::kBaseline ? 8 : 7;
}

std::uint32_t sram_latency(RotFabric fabric) {
  return fabric == RotFabric::kBaseline ? 1 : 0;
}

}  // namespace

RotSubsystem::RotSubsystem(const rv::Image& firmware, RotFabric fabric,
                           soc::Mailbox& mailbox, sim::Memory& soc_memory)
    : firmware_(firmware),
      soc_mem_target_(soc_memory),
      tlul_("tlul", hop_latency(fabric)) {
  rom_.load(firmware.base, firmware.bytes);

  // RoT-private devices.
  tlul_.map(soc::kRotFlash, rom_target_, 0, "rom");
  tlul_.map(soc::kRotSram, sram_target_, sram_latency(fabric), "sram");
  tlul_.map(kRotPlic, plic_, sram_latency(fabric), "plic");

  // Host-domain windows through the TL2AXI bridge.
  tlul_.map(soc::kCfiMailbox, mailbox, bridge_latency(fabric), "bridge-mailbox");
  tlul_.map(soc::kDram, soc_mem_target_, bridge_latency(fabric), "bridge-dram");

  ibex::IbexConfig config;
  config.reset_pc = static_cast<std::uint32_t>(firmware.base);
  config.reset_sp = static_cast<std::uint32_t>(soc::kRotSram.end() - 16);
  core_ = std::make_unique<ibex::IbexCore>(config, tlul_);

  // The HMAC accelerator needs the Ibex clock for its STATUS timing.
  hmac_ = std::make_unique<soc::HmacMmio>(tlul_, kRotDeviceSecret,
                                          [this] { return core_->cycle(); });
  tlul_.map(soc::kRotHmacAccel, *hmac_, sram_latency(fabric), "hmac");

  plic_.enable(kCfiDoorbellIrq);
  mailbox.set_on_doorbell([this] { plic_.raise(kCfiDoorbellIrq); });

  // Sorted section table for section_of(): std::map iterates marks in name
  // order and "address <= pc, address >= best-so-far" lets a later map entry
  // win address ties, so sorting by (address, name) and taking the last
  // entry <= pc reproduces the scan exactly.
  sections_.reserve(firmware_.marks.size());
  for (const auto& [name, addr] : firmware_.marks) {
    sections_.emplace_back(addr, name);
  }
  std::sort(sections_.begin(), sections_.end());
}

ibex::IbexStep RotSubsystem::step() {
  core_->set_irq_line(plic_.irq_asserted());
  return core_->step();
}

void RotSubsystem::run_until(sim::Cycle target) {
  while (core_->cycle() < target && !core_->halted()) {
    if (core_->cycle() < stall_until_) {
      // Injected stall window: the clock ticks, the pipeline is frozen.
      core_->advance_clock(std::min(target, stall_until_) - core_->cycle());
      continue;
    }
    core_->set_irq_line(plic_.irq_asserted());
    if (core_->sleeping() && !plic_.irq_asserted()) {
      core_->advance_clock(target - core_->cycle());
      return;
    }
    core_->step();
  }
}

void RotSubsystem::capture(sim::Snapshot& snapshot,
                           sim::SnapshotWriter& writer) const {
  snapshot.memories.push_back(rom_.capture());
  snapshot.memories.push_back(sram_.capture());
  writer.tag(0x524F5453);  // "ROTS"
  core_->save_state(writer);
  plic_.save_state(writer);
  tlul_.save_state(writer);
  hmac_->save_state(writer);
  writer.u64(stall_until_);
  writer.u64(stalled_cycles_);
}

void RotSubsystem::restore(const sim::Snapshot& snapshot,
                           std::size_t memory_base,
                           sim::SnapshotReader& reader) {
  rom_.restore(snapshot.memories.at(memory_base));
  sram_.restore(snapshot.memories.at(memory_base + 1));
  reader.expect_tag(0x524F5453, "rot subsystem");
  core_->load_state(reader);
  plic_.load_state(reader);
  tlul_.load_state(reader);
  hmac_->load_state(reader);
  stall_until_ = reader.u64();
  stalled_cycles_ = reader.u64();
}

std::string RotSubsystem::section_of(std::uint32_t pc) const {
  // Marks partition the image: the section owning `pc` is the mark with the
  // greatest address <= pc (binary search over the construction-time table).
  const auto it = std::upper_bound(
      sections_.begin(), sections_.end(), std::uint64_t{pc},
      [](std::uint64_t value, const auto& entry) { return value < entry.first; });
  if (it == sections_.begin()) {
    return "init";
  }
  return std::prev(it)->second;
}

}  // namespace titan::cfi

#include "titancfi/overhead_model.hpp"

#include <algorithm>
#include <deque>

namespace titan::cfi {

OverheadResult simulate_cf_cycles(std::span<const Cycle> cf_commit_cycles,
                                  Cycle baseline_total,
                                  const OverheadConfig& config) {
  OverheadResult result;
  result.baseline_cycles = baseline_total;
  result.cf_count = cf_commit_cycles.size();

  const std::uint64_t service =
      config.transport_cycles + config.check_latency;

  Cycle delay = 0;          // Accumulated commit-stage shift.
  Cycle server_free = 0;    // When the log-writer/RoT chain goes idle.
  Cycle prev_arrival = 0;
  bool have_prev = false;
  // Pop (service-start) times of the last `queue_depth` logs.
  std::deque<Cycle> pop_times;

  for (std::size_t i = 0; i < cf_commit_cycles.size(); ++i) {
    const Cycle c = cf_commit_cycles[i];
    Cycle arrival = c + delay;

    // Single queue write port: a second CF op in the same (shifted) cycle
    // slips at least one cycle.
    if (have_prev && arrival <= prev_arrival) {
      arrival = prev_arrival + 1;
    }

    // Queue-full back-pressure: the slot occupied by the log `queue_depth`
    // positions back must have been popped before we can enqueue.
    if (pop_times.size() == config.queue_depth) {
      arrival = std::max(arrival, pop_times.front());
      pop_times.pop_front();
    }

    if (arrival > c + delay) {
      ++result.stall_events;
    }
    delay = arrival - c;

    const Cycle pop_at = std::max(arrival, server_free);
    server_free = pop_at + service;
    pop_times.push_back(pop_at);

    // Occupancy right after this push: logs not yet popped at `arrival`.
    const auto waiting = static_cast<std::size_t>(
        std::count_if(pop_times.begin(), pop_times.end(),
                      [&](Cycle pop) { return pop > arrival; }));
    result.max_queue_occupancy = std::max(result.max_queue_occupancy, waiting);

    prev_arrival = arrival;
    have_prev = true;
  }

  result.stall_cycles = delay;
  result.cfi_cycles = baseline_total + delay;
  if (config.drain_at_end) {
    result.cfi_cycles = std::max(result.cfi_cycles, server_free);
  }
  return result;
}

OverheadResult simulate_trace(const std::vector<cva6::CommitRecord>& trace,
                              Cycle baseline_total,
                              const OverheadConfig& config) {
  std::vector<Cycle> cf_cycles;
  for (const cva6::CommitRecord& record : trace) {
    if (record.cfi_relevant()) {
      cf_cycles.push_back(record.cycle);
    }
  }
  return simulate_cf_cycles(cf_cycles, baseline_total, config);
}

}  // namespace titan::cfi

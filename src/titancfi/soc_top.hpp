// Full-system co-simulation: CVA6 host + CFI stage + CFI Mailbox + OpenTitan
// RoT running the CFI firmware (paper Fig. 1).
//
// One host clock cycle proceeds as:
//   1. the commit stage presents up to two ready scoreboard entries;
//   2. the Queue Controller filters CF entries into the CFI Queue and decides
//      how many entries actually retire (stalling on queue-full / dual-CF);
//   3. the Log Writer FSM advances (pop -> AXI beats -> doorbell -> wait ->
//      verdict), raising a CFI fault on violations;
//   4. the RoT (Ibex + firmware) runs up to the same clock; the doorbell IRQ
//      wakes it through the RoT PLIC, and its completion write is observed by
//      the Log Writer next cycle.
#pragma once

#include <memory>
#include <string>

#include "cva6/core.hpp"
#include "rv/assembler.hpp"
#include "sim/memory.hpp"
#include "soc/bus.hpp"
#include "soc/mailbox.hpp"
#include "soc/pmp.hpp"
#include "titancfi/log_writer.hpp"
#include "titancfi/queue_controller.hpp"
#include "titancfi/rot_subsystem.hpp"

namespace titan::cfi {

struct SocConfig {
  std::size_t queue_depth = 8;
  RotFabric fabric = RotFabric::kBaseline;
  cva6::Cva6Config host;
  sim::Cycle max_cycles = 2'000'000'000;
  bool trace_commits = false;  ///< Record the host commit trace.
  /// Program the host PMP so untrusted software cannot touch the CFI
  /// mailbox or the authenticated spill arena (paper Sec. VI).
  bool enable_pmp = true;
  /// Commit logs per doorbell (1 == the paper's one-at-a-time drain; match
  /// the firmware's FirmwareConfig::batch_capacity when > 1).
  unsigned drain_burst = 1;
  /// HMAC each burst with the shared device-secret slot key (burst > 1;
  /// match FirmwareConfig::batch_mac).
  bool mac_batches = true;
};

struct SocRunResult {
  sim::Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cf_logs = 0;
  std::uint64_t violations = 0;
  bool cfi_fault = false;
  std::uint64_t exit_code = 0;
  std::uint64_t queue_full_stalls = 0;
  std::uint64_t dual_cf_stalls = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t batches = 0;        ///< Doorbell-delimited burst transfers.
  std::size_t max_batch = 0;        ///< Largest burst drained from the queue.
  double mean_queue_occupancy = 0.0;
  /// The log that triggered the violation (valid when cfi_fault).
  CommitLog fault_log{};
};

class SocTop {
 public:
  /// `host_program`: RV64 image loaded into host memory; execution starts at
  /// its base.  `firmware`: RV32 image for the RoT (see firmware::Builder).
  SocTop(const SocConfig& config, const rv::Image& host_program,
         const rv::Image& firmware);

  /// Run to completion (host ECALL), CFI fault, or the cycle guard.
  SocRunResult run();

  [[nodiscard]] cva6::Cva6Core& host() { return *host_core_; }
  [[nodiscard]] RotSubsystem& rot() { return *rot_; }
  [[nodiscard]] QueueController& queue_controller() { return queue_controller_; }
  [[nodiscard]] soc::Mailbox& mailbox() { return mailbox_; }
  [[nodiscard]] sim::Memory& host_memory() { return host_memory_; }
  [[nodiscard]] soc::Crossbar& axi() { return axi_; }
  [[nodiscard]] LogWriter& log_writer() { return *log_writer_; }
  [[nodiscard]] const SocConfig& config() const { return config_; }

 private:
  SocConfig config_;
  sim::Memory host_memory_;
  soc::MemoryTarget host_memory_target_{host_memory_};
  soc::Crossbar axi_{"axi", 2};
  soc::Mailbox mailbox_;
  QueueController queue_controller_;
  std::unique_ptr<cva6::Cva6Core> host_core_;
  std::unique_ptr<RotSubsystem> rot_;
  std::unique_ptr<LogWriter> log_writer_;
  CommitLog fault_log_{};
  bool fault_seen_ = false;
  soc::Pmp pmp_;
};

}  // namespace titan::cfi

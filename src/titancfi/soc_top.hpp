// Full-system co-simulation: CVA6 host + CFI stage + CFI Mailbox + OpenTitan
// RoT running the CFI firmware (paper Fig. 1).
//
// One host clock cycle proceeds as:
//   1. the commit stage presents up to two ready scoreboard entries;
//   2. the Queue Controller filters CF entries into the CFI Queue and decides
//      how many entries actually retire (stalling on queue-full / dual-CF);
//   3. the Log Writer FSM advances (pop -> AXI beats -> doorbell -> wait ->
//      verdict), raising a CFI fault on violations;
//   4. the RoT (Ibex + firmware) runs up to the same clock; the doorbell IRQ
//      wakes it through the RoT PLIC, and its completion write is observed by
//      the Log Writer next cycle.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "cva6/core.hpp"
#include "rv/assembler.hpp"
#include "sim/cancel.hpp"
#include "sim/fault.hpp"
#include "sim/memory.hpp"
#include "sim/snapshot.hpp"
#include "soc/bus.hpp"
#include "soc/mailbox.hpp"
#include "soc/pmp.hpp"
#include "titancfi/attack_tracker.hpp"
#include "titancfi/fault_injector.hpp"
#include "titancfi/log_writer.hpp"
#include "titancfi/queue_controller.hpp"
#include "titancfi/rot_subsystem.hpp"

namespace titan::cfi {

/// Co-simulation scheduler.  Both engines produce bit-identical results
/// (every SocRunResult field, trace, and component statistic); the lock-step
/// loop survives as the equivalence witness and for debugging.
enum class Engine {
  /// Simulate every host cycle (the seed scheduler): evaluate the queue,
  /// tick the Log Writer, and run the RoT forward once per cycle.
  kLockStep,
  /// Fast-forward between CFI events: while the CFI queue is empty, the Log
  /// Writer idle, the mailbox quiet, and no CFI-relevant instruction is in
  /// the host ROB, the host retires straight-line work in one batched
  /// quantum and the RoT clock advances once per quantum.  Falls back to
  /// exact per-cycle stepping inside event windows.
  kEventDriven,
};

struct SocConfig {
  std::size_t queue_depth = 8;
  RotFabric fabric = RotFabric::kBaseline;
  cva6::Cva6Config host;
  sim::Cycle max_cycles = 2'000'000'000;
  bool trace_commits = false;  ///< Record the host commit trace.
  /// Program the host PMP so untrusted software cannot touch the CFI
  /// mailbox or the authenticated spill arena (paper Sec. VI).
  bool enable_pmp = true;
  /// Commit logs per doorbell (1 == the paper's one-at-a-time drain; match
  /// the firmware's FirmwareConfig::batch_capacity when > 1).
  unsigned drain_burst = 1;
  /// HMAC each burst with the shared device-secret slot key (burst > 1;
  /// match FirmwareConfig::batch_mac).
  bool mac_batches = true;
  /// Hysteresis drain policy: when > 1, an idle Log Writer holds off the
  /// next drain until the queue holds `drain_wait` logs or `drain_timeout`
  /// cycles elapsed since the first pending log (0 == drain immediately, the
  /// paper's behaviour).  Trades verdict latency for fewer doorbells.
  unsigned drain_wait = 0;
  sim::Cycle drain_timeout = 0;
  /// Scheduler used by run().  Purely an execution strategy: results are
  /// bit-identical either way (enforced by tests/engine_equivalence_test).
  Engine engine = Engine::kEventDriven;
  /// Deterministic fault schedule (empty == fault-free, zero overhead).
  /// Ordinal-indexed triggers keep both engines bit-exact under any plan.
  sim::FaultPlan faults;
  /// Response when a commit log cannot enter the CFI Queue (see
  /// cfi::OverflowPolicy; kBackPressure is the paper's lossless stall).
  OverflowPolicy overflow_policy = OverflowPolicy::kBackPressure;
  /// Doorbell watchdog for the Log Writer (0 == wait forever, the paper's
  /// behaviour; > 0 needs firmware built with retry_handshake).
  sim::Cycle doorbell_timeout = 0;
  unsigned doorbell_max_retries = 3;
  /// RoT answers MAC mismatches with a retransmission request instead of a
  /// violation (needs firmware built with mac_rerequest).
  bool mac_rerequest = false;
  unsigned mac_max_retries = 3;
  /// Attack-corpus scoring: PCs of hijacked control-flow instructions (from
  /// attacks::generate, sorted).  Empty == no tracking, zero overhead.
  std::vector<std::uint64_t> attack_edges;
  /// Legitimate indirect-branch targets provisioned into the RoT jump table
  /// at `jump_table_base` before boot (the forward-edge policy treats an
  /// empty table as inert, so enforcement needs real contents).  Empty ==
  /// nothing provisioned.
  std::vector<std::uint32_t> jump_table;
  std::uint64_t jump_table_base = 0;
};

/// Why run() returned.  kCompleted is the only cause that drains the CFI
/// pipeline; budget/cancel stops return straight from the loop-top boundary
/// with whatever state the machine reached (cycles-completed-so-far).
enum class StopCause {
  kCompleted,  ///< Program done / CFI fault — today's behaviour.
  kBudget,     ///< Graceful cycle budget reached (set_run_limits).
  kCancelled,  ///< The cancel token fired (deadline / shutdown / disconnect).
};

struct SocRunResult {
  sim::Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cf_logs = 0;
  std::uint64_t violations = 0;
  bool cfi_fault = false;
  std::uint64_t exit_code = 0;
  std::uint64_t queue_full_stalls = 0;
  std::uint64_t dual_cf_stalls = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t batches = 0;        ///< Doorbell-delimited burst transfers.
  std::size_t max_batch = 0;        ///< Largest burst drained from the queue.
  double mean_queue_occupancy = 0.0;
  /// The log that triggered the violation (valid when cfi_fault).
  CommitLog fault_log{};
  /// Fault-injection outcome (all-zero on fault-free runs).
  sim::ResilienceStats resilience{};
  /// Attack-corpus outcome (all-zero when no attack edges were configured).
  attacks::AttackStats attack{};
  /// Why the run returned (kCompleted unless limits were set and hit).
  StopCause stop = StopCause::kCompleted;
};

class SocTop {
 public:
  /// `host_program`: RV64 image loaded into host memory; execution starts at
  /// its base.  `firmware`: RV32 image for the RoT (see firmware::Builder).
  SocTop(const SocConfig& config, const rv::Image& host_program,
         const rv::Image& firmware);

  /// Run to completion (host ECALL), CFI fault, or the cycle guard, using
  /// the configured engine (bit-identical results either way).
  SocRunResult run();

  /// Override the configured engine before run() (e.g. to pit the two
  /// schedulers against each other on the same scenario).
  void set_engine(Engine engine) { config_.engine = engine; }
  [[nodiscard]] Engine engine() const { return config_.engine; }

  /// Cooperative run limits, checked only at loop-top / quantum boundaries
  /// so the simulated machine never observes them:
  ///  * `cancel` (may be null): when it fires, run() returns within a
  ///    bounded number of cycles (the event engine clamps fast-forward
  ///    quanta to `cancel_stride` while a token is armed; 0 picks the
  ///    default stride) with SocRunResult::stop == kCancelled;
  ///  * `budget` (0 == unlimited): run() stops at the first loop-top cycle
  ///    >= budget with stop == kBudget — a *graceful* sibling of
  ///    SocConfig::max_cycles, which throws.
  /// A run finishing under both limits is bit-identical to an unlimited
  /// run: the post-program drain is exempt from the budget (it is part of
  /// completing), and quantum splitting is result-exact (the checkpoint
  /// machinery already relies on that).
  void set_run_limits(const sim::CancelToken* cancel, sim::Cycle budget,
                      sim::Cycle cancel_stride = 0);

  [[nodiscard]] cva6::Cva6Core& host() { return *host_core_; }
  [[nodiscard]] RotSubsystem& rot() { return *rot_; }
  [[nodiscard]] QueueController& queue_controller() { return queue_controller_; }
  [[nodiscard]] soc::Mailbox& mailbox() { return mailbox_; }
  [[nodiscard]] sim::Memory& host_memory() { return host_memory_; }
  [[nodiscard]] soc::Crossbar& axi() { return axi_; }
  [[nodiscard]] LogWriter& log_writer() { return *log_writer_; }
  [[nodiscard]] const SocConfig& config() const { return config_; }

  /// Freeze the full deterministic SoC state at loop-top cycle `cycle`:
  /// host DRAM / RoT ROM / RoT SRAM as CoW memory images plus the flat
  /// component stream (host core, queue controller, log writer, mailbox,
  /// AXI fabric, fault injector, RoT subsystem).  host_now_ is dead at every
  /// loop-top boundary (reassigned before any use in step_cycle and
  /// drain_pending) and the only engine-divergent member, so it is
  /// deliberately not serialized.  The caller seals the snapshot.
  void capture(sim::Snapshot& snapshot, sim::Cycle cycle) const;

  /// Rebuild the captured state.  The SocConfig and program images must match
  /// the captured run (enforced upstream via the Scenario string embedded in
  /// the snapshot); a structural mismatch the stream can detect — fault plan
  /// presence, section-tag skew, trailing bytes — throws sim::SnapshotError.
  /// A subsequent run() continues from the checkpoint cycle.
  void restore(const sim::Snapshot& snapshot);

  /// Arrange for `callback` to fire with a fresh capture at the first
  /// loop-top cycle >= `at`.  Both engines fire at the identical cycle: the
  /// lock-step loop visits every cycle, and the event engine clamps its
  /// fast-forward quanta to the pending checkpoint cycle.  If the main loop
  /// exits first (program done / CFI fault), the callback fires once at loop
  /// exit instead.  With `stop_after`, run() returns straight after the
  /// capture without draining (that partial result is meaningless; callers
  /// wanting a checkpoint ignore it).  One-shot: firing clears the trigger.
  void set_checkpoint(sim::Cycle at,
                      std::function<void(const sim::Snapshot&)> callback,
                      bool stop_after = false);

 private:
  SocRunResult run_lock_step();
  SocRunResult run_event_driven();
  /// One exact simulated cycle (the lock-step loop body); advances `cycle`.
  void step_cycle(sim::Cycle& cycle);
  /// Post-program drain: tick the writer/RoT until the CFI pipeline empties.
  void drain_pending(sim::Cycle& cycle);
  [[nodiscard]] SocRunResult collect_result() const;
  /// Loop-top limit check: budget first (deterministic), then the token.
  /// Sets stop_cause_ and returns true when run() should return now.
  [[nodiscard]] bool stop_requested(sim::Cycle cycle);
  /// Fire the pending checkpoint if due (`cycle` reached it, or `force` at
  /// main-loop exit); returns true when run() should stop (stop_after).
  bool take_checkpoint(sim::Cycle cycle, bool force);
  /// True when no component can generate a CFI event before new host commit
  /// input: empty CFI queue, idle Log Writer, quiet mailbox, and no
  /// CFI-relevant instruction in the host ROB.  In this state the engine may
  /// fast-forward all agents to the next host-side event in one quantum.
  [[nodiscard]] bool quiescent() const;

  SocConfig config_;
  sim::Memory host_memory_;
  soc::MemoryTarget host_memory_target_{host_memory_};
  soc::Crossbar axi_{"axi", 2};
  soc::Mailbox mailbox_;
  QueueController queue_controller_;
  std::unique_ptr<cva6::Cva6Core> host_core_;
  std::unique_ptr<RotSubsystem> rot_;
  std::unique_ptr<LogWriter> log_writer_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<AttackTracker> tracker_;
  /// Host cycle the components are currently stepping (fault timestamping;
  /// only advanced in per-cycle windows, where both engines agree on it).
  sim::Cycle host_now_ = 0;
  CommitLog fault_log_{};
  bool fault_seen_ = false;
  soc::Pmp pmp_;
  /// Pending one-shot checkpoint trigger (see set_checkpoint).
  std::optional<sim::Cycle> checkpoint_at_;
  std::function<void(const sim::Snapshot&)> checkpoint_cb_;
  bool checkpoint_stop_ = false;
  /// Cycle run() starts from — zero on a cold run, the checkpoint cycle
  /// after restore().
  sim::Cycle start_cycle_ = 0;
  /// Cooperative run limits (see set_run_limits).
  const sim::CancelToken* cancel_ = nullptr;
  sim::Cycle budget_ = 0;
  sim::Cycle cancel_stride_ = 0;
  StopCause stop_cause_ = StopCause::kCompleted;
};

}  // namespace titan::cfi

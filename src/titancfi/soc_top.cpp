#include "titancfi/soc_top.hpp"

#include <stdexcept>

namespace titan::cfi {

SocTop::SocTop(const SocConfig& config, const rv::Image& host_program,
               const rv::Image& firmware)
    : config_(config), queue_controller_(config.queue_depth) {
  // The drain protocol is a contract between the Log Writer and the
  // firmware; a skew (burst writer + single-log firmware, or MAC on one
  // side only) would silently disable or falsely trip CFI checking, so
  // fail construction instead.  Batched images carry "batch"/"batch_mac"
  // marks (see fw::build_firmware).
  const bool fw_batched = firmware.marks.contains("batch");
  const bool fw_mac = firmware.marks.contains("batch_mac");
  const bool want_batched = config.drain_burst > 1;
  const bool want_mac = want_batched && config.mac_batches;
  if (fw_batched != want_batched) {
    throw std::invalid_argument(
        "SocTop: drain_burst and firmware batch_capacity disagree "
        "(build the firmware with batch_capacity matching the burst)");
  }
  if (fw_batched && fw_mac != want_mac) {
    throw std::invalid_argument(
        "SocTop: mac_batches and firmware batch_mac disagree");
  }
  host_memory_.load(host_program.base, host_program.bytes);

  // Host-domain AXI fabric, mastered by the CFI Log Writer.
  axi_.map(soc::kCfiMailbox, mailbox_, 0, "cfi-mailbox");
  axi_.map(soc::kDram, host_memory_target_, 2, "dram");

  cva6::Cva6Config host_config = config.host;
  host_config.reset_pc = host_program.base;
  host_core_ = std::make_unique<cva6::Cva6Core>(host_config, host_memory_);
  host_core_->set_trace_enabled(config.trace_commits);
  if (config.enable_pmp) {
    pmp_ = soc::Pmp::titancfi_default();
    host_core_->set_pmp(&pmp_);
  }

  rot_ = std::make_unique<RotSubsystem>(firmware, config.fabric, mailbox_,
                                        host_memory_);

  LogWriterConfig writer_config;
  writer_config.burst = config.drain_burst;
  writer_config.mac_batches = config.drain_burst > 1 && config.mac_batches;
  writer_config.device_secret = kRotDeviceSecret;
  writer_config.mac_key_sel = kBatchMacKeySlot;
  writer_config.drain_wait = config.drain_wait;
  writer_config.drain_timeout = config.drain_timeout;
  log_writer_ = std::make_unique<LogWriter>(
      queue_controller_, axi_, mailbox_,
      [this](const CommitLog& log) {
        fault_log_ = log;
        fault_seen_ = true;
        host_core_->raise_cfi_fault();
      },
      writer_config);
}

namespace {

// Let the RoT firmware initialise (set up mtvec, shadow-stack pointers,
// reach its idle loop) before the host starts committing.  The RoT clock
// then leads the host clock by this constant offset; all interactions are
// relative, so the offset only models "RoT boots first" (secure boot).
constexpr sim::Cycle kRotInitBudget = 200;

}  // namespace

SocRunResult SocTop::run() {
  return config_.engine == Engine::kLockStep ? run_lock_step()
                                             : run_event_driven();
}

void SocTop::step_cycle(sim::Cycle& cycle) {
  const auto candidates = host_core_->commit_candidates();
  const unsigned allowed = queue_controller_.evaluate(candidates);
  host_core_->retire(allowed);
  log_writer_->tick(cycle);
  rot_->run_until(cycle + kRotInitBudget);
  host_core_->tick();
  ++cycle;
}

void SocTop::drain_pending(sim::Cycle& cycle) {
  // Drain pending checks (unless a fault already stopped the run): the host
  // program is done, but the RoT may still be behind.
  const sim::Cycle drain_guard = cycle + 1'000'000;
  while (!fault_seen_ &&
         (!queue_controller_.queue().empty() ||
          log_writer_->state() != LogWriter::State::kIdle)) {
    if (cycle >= drain_guard) {
      throw std::runtime_error("SocTop: drain did not converge");
    }
    log_writer_->tick(cycle);
    rot_->run_until(cycle + kRotInitBudget);
    ++cycle;
  }
}

SocRunResult SocTop::run_lock_step() {
  sim::Cycle cycle = 0;
  rot_->run_until(kRotInitBudget);

  while (!host_core_->program_done() && !fault_seen_) {
    if (cycle >= config_.max_cycles) {
      throw std::runtime_error("SocTop: cycle guard exceeded");
    }
    step_cycle(cycle);
  }

  drain_pending(cycle);
  return collect_result();
}

bool SocTop::quiescent() const {
  return queue_controller_.quiescent() &&
         log_writer_->state() == LogWriter::State::kIdle &&
         !mailbox_.doorbell_pending() && !mailbox_.completion_pending() &&
         !host_core_->has_pending_cfi();
}

SocRunResult SocTop::run_event_driven() {
  sim::Cycle cycle = 0;
  rot_->run_until(kRotInitBudget);

  while (!host_core_->program_done() && !fault_seen_) {
    if (cycle >= config_.max_cycles) {
      throw std::runtime_error("SocTop: cycle guard exceeded");
    }
    if (quiescent()) {
      // No component can act before the next CFI-relevant commit: retire
      // straight-line host work in one quantum.  The skipped lock-step
      // iterations would have sampled an empty queue, scanned non-CFI
      // entries through the filters, ticked an idle writer (a no-op), and
      // run the RoT to the same final clock — all replayed exactly below.
      const auto quantum = host_core_->run_until_event(config_.max_cycles);
      if (quantum.cycles > 0) {
        queue_controller_.note_bypassed_cycles(
            quantum.cycles, quantum.port0_scans, quantum.port1_scans);
        cycle += quantum.cycles;
        // The last executed cycle's lock-step iteration ran the RoT to
        // (cycle - 1) + budget; the next iteration (per-cycle or quantum)
        // advances it further, preserving the tick/run_until interleaving.
        rot_->run_until(cycle - 1 + kRotInitBudget);
        continue;
      }
    }
    // Event window: exact per-cycle stepping (identical to lock-step).
    step_cycle(cycle);
  }

  drain_pending(cycle);
  return collect_result();
}

SocRunResult SocTop::collect_result() const {
  SocRunResult result;
  result.cycles = host_core_->cycle();
  result.instructions = host_core_->instret();
  result.cf_logs = log_writer_->logs_sent();
  result.violations = log_writer_->violations();
  result.cfi_fault = fault_seen_;
  result.fault_log = fault_log_;
  result.exit_code = host_core_->exit_code();
  result.queue_full_stalls = queue_controller_.full_stalls();
  result.dual_cf_stalls = queue_controller_.dual_cf_stalls();
  result.doorbells = mailbox_.doorbell_count();
  result.batches = log_writer_->batches_sent();
  result.max_batch = queue_controller_.max_drained();
  result.mean_queue_occupancy =
      queue_controller_.queue().stats().mean_occupancy();
  return result;
}

}  // namespace titan::cfi

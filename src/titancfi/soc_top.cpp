#include "titancfi/soc_top.hpp"

#include <stdexcept>

namespace titan::cfi {

SocTop::SocTop(const SocConfig& config, const rv::Image& host_program,
               const rv::Image& firmware)
    : config_(config), queue_controller_(config.queue_depth) {
  host_memory_.load(host_program.base, host_program.bytes);

  // Host-domain AXI fabric, mastered by the CFI Log Writer.
  axi_.map(soc::kCfiMailbox, mailbox_, 0, "cfi-mailbox");
  axi_.map(soc::kDram, host_memory_target_, 2, "dram");

  cva6::Cva6Config host_config = config.host;
  host_config.reset_pc = host_program.base;
  host_core_ = std::make_unique<cva6::Cva6Core>(host_config, host_memory_);
  host_core_->set_trace_enabled(config.trace_commits);
  if (config.enable_pmp) {
    pmp_ = soc::Pmp::titancfi_default();
    host_core_->set_pmp(&pmp_);
  }

  rot_ = std::make_unique<RotSubsystem>(firmware, config.fabric, mailbox_,
                                        host_memory_);

  log_writer_ = std::make_unique<LogWriter>(
      queue_controller_.queue(), axi_, mailbox_, [this](const CommitLog& log) {
        fault_log_ = log;
        fault_seen_ = true;
        host_core_->raise_cfi_fault();
      });
}

SocRunResult SocTop::run() {
  sim::Cycle cycle = 0;
  // Let the RoT firmware initialise (set up mtvec, shadow-stack pointers,
  // reach its idle loop) before the host starts committing.  The RoT clock
  // then leads the host clock by this constant offset; all interactions are
  // relative, so the offset only models "RoT boots first" (secure boot).
  constexpr sim::Cycle kRotInitBudget = 200;
  rot_->run_until(kRotInitBudget);

  while (!host_core_->program_done() && !fault_seen_) {
    if (cycle >= config_.max_cycles) {
      throw std::runtime_error("SocTop: cycle guard exceeded");
    }
    const auto candidates = host_core_->commit_candidates();
    const unsigned allowed = queue_controller_.evaluate(candidates);
    host_core_->retire(allowed);
    log_writer_->tick(cycle);
    rot_->run_until(cycle + kRotInitBudget);
    host_core_->tick();
    ++cycle;
  }

  // Drain pending checks (unless a fault already stopped the run): the host
  // program is done, but the RoT may still be behind.
  sim::Cycle drain_guard = cycle + 1'000'000;
  while (!fault_seen_ &&
         (!queue_controller_.queue().empty() ||
          log_writer_->state() != LogWriter::State::kIdle)) {
    if (cycle >= drain_guard) {
      throw std::runtime_error("SocTop: drain did not converge");
    }
    log_writer_->tick(cycle);
    rot_->run_until(cycle + kRotInitBudget);
    ++cycle;
  }

  SocRunResult result;
  result.cycles = host_core_->cycle();
  result.instructions = host_core_->instret();
  result.cf_logs = log_writer_->logs_sent();
  result.violations = log_writer_->violations();
  result.cfi_fault = fault_seen_;
  result.fault_log = fault_log_;
  result.exit_code = host_core_->exit_code();
  result.queue_full_stalls = queue_controller_.full_stalls();
  result.dual_cf_stalls = queue_controller_.dual_cf_stalls();
  result.doorbells = mailbox_.doorbell_count();
  result.mean_queue_occupancy =
      queue_controller_.queue().stats().mean_occupancy();
  return result;
}

}  // namespace titan::cfi

#include "titancfi/soc_top.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

namespace titan::cfi {

SocTop::SocTop(const SocConfig& config, const rv::Image& host_program,
               const rv::Image& firmware)
    : config_(config), queue_controller_(config.queue_depth) {
  // The drain protocol is a contract between the Log Writer and the
  // firmware; a skew (burst writer + single-log firmware, or MAC on one
  // side only) would silently disable or falsely trip CFI checking, so
  // fail construction instead.  Batched images carry "batch"/"batch_mac"
  // marks (see fw::build_firmware).
  const bool fw_batched = firmware.marks.contains("batch");
  const bool fw_mac = firmware.marks.contains("batch_mac");
  const bool want_batched = config.drain_burst > 1;
  const bool want_mac = want_batched && config.mac_batches;
  if (fw_batched != want_batched) {
    throw std::invalid_argument(
        "SocTop: drain_burst and firmware batch_capacity disagree "
        "(build the firmware with batch_capacity matching the burst)");
  }
  if (fw_batched && fw_mac != want_mac) {
    throw std::invalid_argument(
        "SocTop: mac_batches and firmware batch_mac disagree");
  }
  // Degradation protocols are contracts too: a watchdog writer against
  // firmware that never zeroes BATCH_COUNT would re-run the policy over a
  // stale batch on every retried doorbell (corrupting the shadow stack),
  // and a mac_rerequest mismatch turns every retransmission request into a
  // violation (or vice versa).
  if (firmware.marks.contains("retry_handshake") !=
      (config.doorbell_timeout > 0)) {
    throw std::invalid_argument(
        "SocTop: doorbell_timeout and firmware retry_handshake disagree "
        "(the watchdog retry protocol needs the idempotent BATCH_COUNT "
        "handshake on both sides)");
  }
  if (firmware.marks.contains("mac_rerequest") != config.mac_rerequest) {
    throw std::invalid_argument(
        "SocTop: mac_rerequest and firmware mac_rerequest disagree");
  }
  host_memory_.load(host_program.base, host_program.bytes);

  // Host-domain AXI fabric, mastered by the CFI Log Writer.
  axi_.map(soc::kCfiMailbox, mailbox_, 0, "cfi-mailbox");
  axi_.map(soc::kDram, host_memory_target_, 2, "dram");

  cva6::Cva6Config host_config = config.host;
  host_config.reset_pc = host_program.base;
  host_core_ = std::make_unique<cva6::Cva6Core>(host_config, host_memory_);
  host_core_->set_trace_enabled(config.trace_commits);
  if (config.enable_pmp) {
    pmp_ = soc::Pmp::titancfi_default();
    host_core_->set_pmp(&pmp_);
  }

  rot_ = std::make_unique<RotSubsystem>(firmware, config.fabric, mailbox_,
                                        host_memory_);
  if (!config.jump_table.empty()) {
    // Provision the forward-edge policy's target table into RoT SRAM before
    // boot ([count][targets...], 32-bit words).  The firmware treats an
    // empty table as inert, so enforcement scenarios must fill it.
    if (config.jump_table_base == 0) {
      throw std::invalid_argument(
          "SocTop: jump_table contents without a jump_table_base");
    }
    rot_->sram().write32(config.jump_table_base,
                         static_cast<std::uint32_t>(config.jump_table.size()));
    for (std::size_t i = 0; i < config.jump_table.size(); ++i) {
      rot_->sram().write32(config.jump_table_base + 4 + 4 * i,
                           config.jump_table[i]);
    }
  }

  LogWriterConfig writer_config;
  writer_config.burst = config.drain_burst;
  writer_config.mac_batches = config.drain_burst > 1 && config.mac_batches;
  writer_config.device_secret = kRotDeviceSecret;
  writer_config.mac_key_sel = kBatchMacKeySlot;
  writer_config.drain_wait = config.drain_wait;
  writer_config.drain_timeout = config.drain_timeout;
  writer_config.doorbell_timeout = config.doorbell_timeout;
  writer_config.doorbell_max_retries = config.doorbell_max_retries;
  writer_config.mac_rerequest = config.mac_rerequest;
  writer_config.mac_max_retries = config.mac_max_retries;
  const auto fail_closed = [this](const CommitLog& log) {
    fault_log_ = log;
    fault_seen_ = true;
    host_core_->raise_cfi_fault();
  };
  log_writer_ = std::make_unique<LogWriter>(queue_controller_, axi_, mailbox_,
                                            fail_closed, writer_config);
  queue_controller_.set_overflow_policy(config.overflow_policy);
  queue_controller_.set_fail_closed_hook(fail_closed);

  if (!config.faults.empty()) {
    injector_ = std::make_unique<FaultInjector>(config.faults);
    queue_controller_.set_fault_injector(injector_.get(), &host_now_);
    log_writer_->set_fault_injector(injector_.get());
    // The mailbox seam covers both doorbell-transit sites: a dropped ring
    // never reaches the flag/IRQ; a delivered ring may open a RoT stall
    // window (the Ibex clock is engine-invariant, so anchoring the window
    // there keeps the engines bit-exact).
    mailbox_.set_doorbell_filter([this] {
      if (injector_->fire(sim::FaultSite::kDoorbellDrop, host_now_)) {
        return false;
      }
      if (const auto width =
              injector_->fire(sim::FaultSite::kRotStall, host_now_)) {
        rot_->inject_stall(std::max<sim::Cycle>(*width, 1));
      }
      return true;
    });
  }

  if (!config.attack_edges.empty()) {
    tracker_ = std::make_unique<AttackTracker>(config.attack_edges);
    queue_controller_.set_attack_tracker(tracker_.get(), &host_now_);
    log_writer_->set_attack_tracker(tracker_.get());
  }
}

namespace {

// Let the RoT firmware initialise (set up mtvec, shadow-stack pointers,
// reach its idle loop) before the host starts committing.  The RoT clock
// then leads the host clock by this constant offset; all interactions are
// relative, so the offset only models "RoT boots first" (secure boot).
constexpr sim::Cycle kRotInitBudget = 200;

/// Section sentinel framing the SocTop component stream ("SOCT").
constexpr std::uint32_t kSocTag = 0x534F'4354;

/// Default fast-forward clamp while a cancel token is armed: the event
/// engine splits quiescent quanta at this stride so the token is observed
/// within a bounded number of simulated cycles.  Splitting a quantum is
/// result-exact (the checkpoint clamp relies on the same property), so the
/// stride only bounds cancellation latency — it never changes results.
constexpr sim::Cycle kCancelCheckStride = 1 << 16;

}  // namespace

SocRunResult SocTop::run() {
  stop_cause_ = StopCause::kCompleted;
  return config_.engine == Engine::kLockStep ? run_lock_step()
                                             : run_event_driven();
}

void SocTop::set_run_limits(const sim::CancelToken* cancel, sim::Cycle budget,
                            sim::Cycle cancel_stride) {
  cancel_ = cancel;
  budget_ = budget;
  cancel_stride_ = cancel_stride != 0 ? cancel_stride : kCancelCheckStride;
}

bool SocTop::stop_requested(sim::Cycle cycle) {
  // Budget before token: a run that hits both limits on the same loop-top
  // cycle reports the deterministic one (the budget), not whichever thread
  // fired the token first.
  if (budget_ != 0 && cycle >= budget_) {
    stop_cause_ = StopCause::kBudget;
    return true;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    stop_cause_ = StopCause::kCancelled;
    return true;
  }
  return false;
}

void SocTop::capture(sim::Snapshot& snapshot, sim::Cycle cycle) const {
  snapshot.cycle = cycle;
  snapshot.memories.clear();
  snapshot.memories.push_back(host_memory_.capture());
  sim::SnapshotWriter writer;
  writer.tag(kSocTag);
  host_core_->save_state(writer);
  queue_controller_.save_state(writer);
  log_writer_->save_state(writer);
  mailbox_.save_state(writer);
  axi_.save_state(writer);
  writer.boolean(injector_ != nullptr);
  if (injector_ != nullptr) {
    injector_->save_state(writer);
  }
  writer.boolean(tracker_ != nullptr);
  if (tracker_ != nullptr) {
    tracker_->save_state(writer);
  }
  writer.boolean(fault_seen_);
  for (const std::uint64_t beat : fault_log_.pack()) {
    writer.u64(beat);
  }
  rot_->capture(snapshot, writer);
  snapshot.state = writer.take();
}

void SocTop::restore(const sim::Snapshot& snapshot) {
  if (snapshot.memories.size() != 1 + RotSubsystem::kMemoryImages) {
    throw sim::SnapshotError("soc top: wrong memory image count");
  }
  host_memory_.restore(snapshot.memories.at(0));
  sim::SnapshotReader reader(snapshot.state);
  reader.expect_tag(kSocTag, "soc top");
  host_core_->load_state(reader);
  queue_controller_.load_state(reader);
  log_writer_->load_state(reader);
  mailbox_.load_state(reader);
  axi_.load_state(reader);
  const bool captured_injector = reader.boolean();
  if (captured_injector != (injector_ != nullptr)) {
    throw sim::SnapshotError(
        "soc top: snapshot fault plan does not match this configuration");
  }
  if (injector_ != nullptr) {
    injector_->load_state(reader);
  }
  const bool captured_tracker = reader.boolean();
  if (captured_tracker != (tracker_ != nullptr)) {
    throw sim::SnapshotError(
        "soc top: snapshot attack plan does not match this configuration");
  }
  if (tracker_ != nullptr) {
    tracker_->load_state(reader);
  }
  fault_seen_ = reader.boolean();
  std::array<std::uint64_t, CommitLog::kBeats> beats{};
  for (std::uint64_t& beat : beats) {
    beat = reader.u64();
  }
  fault_log_ = CommitLog::unpack(beats);
  rot_->restore(snapshot, 1, reader);
  if (!reader.done()) {
    throw sim::SnapshotError("soc top: trailing component state");
  }
  start_cycle_ = snapshot.cycle;
}

void SocTop::set_checkpoint(sim::Cycle at,
                            std::function<void(const sim::Snapshot&)> callback,
                            bool stop_after) {
  checkpoint_at_ = at;
  checkpoint_cb_ = std::move(callback);
  checkpoint_stop_ = stop_after;
}

bool SocTop::take_checkpoint(sim::Cycle cycle, bool force) {
  if (!checkpoint_at_ || (!force && cycle < *checkpoint_at_)) {
    return false;
  }
  checkpoint_at_.reset();
  sim::Snapshot snapshot;
  capture(snapshot, cycle);
  checkpoint_cb_(snapshot);
  return checkpoint_stop_;
}

void SocTop::step_cycle(sim::Cycle& cycle) {
  host_now_ = cycle;
  const auto candidates = host_core_->commit_candidates();
  const unsigned allowed = queue_controller_.evaluate(candidates);
  host_core_->retire(allowed);
  log_writer_->tick(cycle);
  rot_->run_until(cycle + kRotInitBudget);
  host_core_->tick();
  ++cycle;
}

void SocTop::drain_pending(sim::Cycle& cycle) {
  // Drain pending checks (unless a fault already stopped the run): the host
  // program is done, but the RoT may still be behind.  The drain is exempt
  // from the cycle *budget* — finishing the pipeline is part of completing,
  // and exempting it is what keeps a within-budget run byte-identical to an
  // unbudgeted one — but it still honours the cancel token, so shutdown and
  // disconnect stops stay bounded even mid-drain.
  const sim::Cycle drain_guard = cycle + 1'000'000;
  while (!fault_seen_ &&
         (!queue_controller_.queue().empty() ||
          log_writer_->state() != LogWriter::State::kIdle)) {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      stop_cause_ = StopCause::kCancelled;
      return;
    }
    if (cycle >= drain_guard) {
      throw std::runtime_error("SocTop: drain did not converge");
    }
    host_now_ = cycle;
    log_writer_->tick(cycle);
    rot_->run_until(cycle + kRotInitBudget);
    ++cycle;
  }
}

SocRunResult SocTop::run_lock_step() {
  sim::Cycle cycle = start_cycle_;
  // Harmless monotonic no-op on a resumed run (the RoT clock is already
  // past the init budget).
  rot_->run_until(kRotInitBudget);

  while (!host_core_->program_done() && !fault_seen_) {
    if (take_checkpoint(cycle, /*force=*/false)) {
      return collect_result();
    }
    if (stop_requested(cycle)) {
      return collect_result();
    }
    if (cycle >= config_.max_cycles) {
      throw std::runtime_error("SocTop: cycle guard exceeded");
    }
    step_cycle(cycle);
  }

  // The program finished (or faulted) before the checkpoint cycle: fire at
  // the main-loop exit boundary so the caller still gets a snapshot.
  if (take_checkpoint(cycle, /*force=*/true)) {
    return collect_result();
  }
  drain_pending(cycle);
  return collect_result();
}

bool SocTop::quiescent() const {
  return queue_controller_.quiescent() &&
         log_writer_->state() == LogWriter::State::kIdle &&
         !mailbox_.doorbell_pending() && !mailbox_.completion_pending() &&
         !host_core_->has_pending_cfi();
}

SocRunResult SocTop::run_event_driven() {
  sim::Cycle cycle = start_cycle_;
  rot_->run_until(kRotInitBudget);

  while (!host_core_->program_done() && !fault_seen_) {
    if (take_checkpoint(cycle, /*force=*/false)) {
      return collect_result();
    }
    if (stop_requested(cycle)) {
      return collect_result();
    }
    if (cycle >= config_.max_cycles) {
      throw std::runtime_error("SocTop: cycle guard exceeded");
    }
    if (quiescent()) {
      // No component can act before the next CFI-relevant commit: retire
      // straight-line host work in one quantum.  The skipped lock-step
      // iterations would have sampled an empty queue, scanned non-CFI
      // entries through the filters, ticked an idle writer (a no-op), and
      // run the RoT to the same final clock — all replayed exactly below.
      // A pending checkpoint clamps the quantum so both engines capture at
      // the identical loop-top cycle; a budget clamps it so the stop lands
      // exactly at the budget cycle on both engines; an armed cancel token
      // clamps it to the check stride so cancellation latency stays bounded
      // even on straight-line workloads.
      sim::Cycle limit = config_.max_cycles;
      if (checkpoint_at_) {
        limit = std::min(limit, *checkpoint_at_);
      }
      if (budget_ != 0) {
        limit = std::min(limit, budget_);
      }
      if (cancel_ != nullptr) {
        limit = std::min(limit, cycle + cancel_stride_);
      }
      const auto quantum = host_core_->run_until_event(limit);
      if (quantum.cycles > 0) {
        queue_controller_.note_bypassed_cycles(
            quantum.cycles, quantum.port0_scans, quantum.port1_scans);
        cycle += quantum.cycles;
        // The last executed cycle's lock-step iteration ran the RoT to
        // (cycle - 1) + budget; the next iteration (per-cycle or quantum)
        // advances it further, preserving the tick/run_until interleaving.
        rot_->run_until(cycle - 1 + kRotInitBudget);
        continue;
      }
    }
    // Event window: exact per-cycle stepping (identical to lock-step).
    step_cycle(cycle);
  }

  if (take_checkpoint(cycle, /*force=*/true)) {
    return collect_result();
  }
  drain_pending(cycle);
  return collect_result();
}

SocRunResult SocTop::collect_result() const {
  SocRunResult result;
  result.cycles = host_core_->cycle();
  result.instructions = host_core_->instret();
  result.cf_logs = log_writer_->logs_sent();
  result.violations = log_writer_->violations();
  result.cfi_fault = fault_seen_;
  result.fault_log = fault_log_;
  result.exit_code = host_core_->exit_code();
  result.queue_full_stalls = queue_controller_.full_stalls();
  result.dual_cf_stalls = queue_controller_.dual_cf_stalls();
  result.doorbells = mailbox_.doorbell_count();
  result.batches = log_writer_->batches_sent();
  result.max_batch = queue_controller_.max_drained();
  result.mean_queue_occupancy =
      queue_controller_.queue().stats().mean_occupancy();
  // Resilience block: injector pairing + the counters each degradation
  // mechanism owns.  All-zero (and cheap) when no faults were configured.
  if (injector_ != nullptr) {
    result.resilience = injector_->stats();
  }
  result.resilience.doorbell_retries = log_writer_->doorbell_retries();
  result.resilience.mac_retries = log_writer_->mac_retries();
  result.resilience.spurious_completions = log_writer_->spurious_completions();
  result.resilience.dropped_logs = queue_controller_.dropped_logs();
  result.resilience.false_negatives = queue_controller_.dropped_returns();
  result.resilience.degraded_cycles = log_writer_->degraded_cycles() +
                                      queue_controller_.overflow_stall_cycles() +
                                      rot_->stalled_cycles();
  if (tracker_ != nullptr) {
    result.attack = tracker_->stats();
  }
  result.stop = stop_cause_;
  return result;
}

}  // namespace titan::cfi

// CFI Filter (paper Sec. IV-B1): one per CVA6 commit port.
//
// "A CFI Filter takes a scoreboard entry as input, which is emitted by the
//  commit port, and generates a commit log. ... the CFI Filter verifies if
//  the retired instruction is relevant to CFI, and it extracts useful
//  metadata, called the commit log."
#pragma once

#include <cstdint>
#include <optional>

#include "cva6/scoreboard.hpp"
#include "sim/snapshot.hpp"
#include "titancfi/commit_log.hpp"

namespace titan::cfi {

class CfiFilter {
 public:
  /// Returns the commit log when the entry is a call, return, or indirect
  /// jump; nullopt otherwise.
  [[nodiscard]] std::optional<CommitLog> filter(
      const cva6::ScoreboardEntry& entry) {
    ++scanned_;
    if (!entry.cfi_relevant()) {
      return std::nullopt;
    }
    ++selected_;
    return CommitLog::from_entry(entry);
  }

  [[nodiscard]] std::uint64_t scanned() const { return scanned_; }
  [[nodiscard]] std::uint64_t selected() const { return selected_; }

  /// Account for `count` entries this filter provably would have scanned (and
  /// rejected) during an event-driven fast-forward window, where per-entry
  /// filter() calls are skipped because no entry is CFI-relevant.  Keeps the
  /// scanned counter bit-identical to the per-cycle lock-step engine.
  void note_scanned(std::uint64_t count) { scanned_ += count; }

  /// Checkpoint support (the filter is pure; only its counters persist).
  void save_state(sim::SnapshotWriter& writer) const {
    writer.u64(scanned_);
    writer.u64(selected_);
  }
  void load_state(sim::SnapshotReader& reader) {
    scanned_ = reader.u64();
    selected_ = reader.u64();
  }

 private:
  std::uint64_t scanned_ = 0;
  std::uint64_t selected_ = 0;
};

}  // namespace titan::cfi

// The 224-bit commit log packet (paper Sec. IV-B1).
//
// "A commit log is a 224 bits packet containing four information: (i)
//  instruction program counter, (ii) the uncompressed binary encoding,
//  (iii) the next address, and (iv) the target address."
//
// Wire layout (little-endian, 64-bit beats as the Log Writer transmits them
// over the 64-bit AXI data bus, Sec. IV-B3):
//   beat 0:  pc[63:0]
//   beat 1:  encoding[31:0] | next[31:0]  << 32
//   beat 2:  next[63:32]    | target[31:0] << 32
//   beat 3:  target[63:32]                      (upper 32 bits unused)
#pragma once

#include <array>
#include <cstdint>

#include "cva6/scoreboard.hpp"
#include "rv/isa.hpp"

namespace titan::cfi {

struct CommitLog {
  std::uint64_t pc = 0;
  std::uint32_t encoding = 0;  ///< Uncompressed (expanded) 32-bit encoding.
  std::uint64_t next = 0;      ///< Fall-through address (return site for calls).
  std::uint64_t target = 0;    ///< Actual control-flow destination.

  static constexpr unsigned kBits = 224;
  static constexpr unsigned kBeats = 4;  ///< 64-bit bus beats per packet.

  [[nodiscard]] std::array<std::uint64_t, kBeats> pack() const;
  [[nodiscard]] static CommitLog unpack(
      const std::array<std::uint64_t, kBeats>& beats);

  /// Build from a commit-port scoreboard entry.
  [[nodiscard]] static CommitLog from_entry(const cva6::ScoreboardEntry& entry);
  /// Build from a trace record (trace-driven evaluation path).
  [[nodiscard]] static CommitLog from_record(const cva6::CommitRecord& record);

  /// Control-flow class recovered from the encoding, exactly as the RoT
  /// firmware does it: "it parses the binary encoding of the control flow
  /// instruction to understand which control flow event it represents"
  /// (Sec. IV-C).
  [[nodiscard]] rv::CfKind classify() const;

  bool operator==(const CommitLog&) const = default;
};

}  // namespace titan::cfi

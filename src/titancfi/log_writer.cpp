#include "titancfi/log_writer.hpp"

namespace titan::cfi {

LogWriter::LogWriter(CfiQueue& queue, soc::Crossbar& axi,
                     soc::Mailbox& mailbox, FaultHook on_fault)
    : queue_(queue), axi_(axi), mailbox_(mailbox), on_fault_(std::move(on_fault)) {}

void LogWriter::tick(Cycle now) {
  if (now < busy_until_ || state_ == State::kFault) {
    if (state_ == State::kWaitCompletion) {
      ++wait_cycles_;
    }
    return;
  }

  switch (state_) {
    case State::kIdle: {
      const auto log = queue_.pop();
      if (!log.has_value()) {
        return;
      }
      current_ = *log;
      beats_ = current_.pack();
      beat_index_ = 0;
      state_ = State::kWriteBeats;
      busy_until_ = now + 1;  // Pop latency.
      break;
    }
    case State::kWriteBeats: {
      const soc::Addr addr =
          soc::kCfiMailbox.base + soc::Mailbox::kDataOffset + 8 * beat_index_;
      const soc::BusResponse response = axi_.write(addr, 8, beats_[beat_index_]);
      busy_until_ = now + response.latency;
      if (++beat_index_ == CommitLog::kBeats) {
        state_ = State::kRingDoorbell;
      }
      break;
    }
    case State::kRingDoorbell: {
      const soc::BusResponse response =
          axi_.write(soc::kCfiMailbox.base + soc::Mailbox::kDoorbellOffset, 8, 1);
      busy_until_ = now + response.latency;
      ++logs_sent_;
      state_ = State::kWaitCompletion;
      break;
    }
    case State::kWaitCompletion: {
      // The completion register is wired straight to the commit stage
      // (Sec. IV-A): no bus transaction needed to observe it.
      if (!mailbox_.completion_pending()) {
        ++wait_cycles_;
        return;
      }
      state_ = State::kReadResult;
      break;
    }
    case State::kReadResult: {
      const soc::BusResponse response =
          axi_.read(soc::kCfiMailbox.base + soc::Mailbox::kDataOffset, 8);
      busy_until_ = now + response.latency;
      mailbox_.clear_completion();
      const bool violation = (response.value & 1) != 0;
      if (violation) {
        ++violations_;
        state_ = State::kFault;
        if (on_fault_) {
          on_fault_(current_);
        }
      } else {
        state_ = State::kIdle;
      }
      break;
    }
    case State::kFault:
      break;
  }
}

}  // namespace titan::cfi

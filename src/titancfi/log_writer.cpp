#include "titancfi/log_writer.hpp"

#include <stdexcept>

#include "soc/hmac_mmio.hpp"

namespace titan::cfi {

namespace {

/// Mailbox MAC register packing: each 64-bit register holds two digest words
/// in the byte order the HMAC accelerator's DIGESTn reads present them
/// (big-endian within the 32-bit word), so the firmware can compare the
/// accelerator output against 32-bit mailbox reads with no byte shuffling.
std::uint64_t mac_reg(const crypto::Digest& digest, unsigned index) {
  const auto word = [&digest](unsigned w) -> std::uint64_t {
    return (std::uint64_t{digest[4 * w]} << 24) |
           (std::uint64_t{digest[4 * w + 1]} << 16) |
           (std::uint64_t{digest[4 * w + 2]} << 8) |
           std::uint64_t{digest[4 * w + 3]};
  };
  return word(2 * index) | (word(2 * index + 1) << 32);
}

}  // namespace

LogWriter::LogWriter(QueueController& controller, soc::Crossbar& axi,
                     soc::Mailbox& mailbox, FaultHook on_fault,
                     LogWriterConfig config)
    : controller_(controller),
      axi_(axi),
      mailbox_(mailbox),
      on_fault_(std::move(on_fault)),
      config_(config) {
  if (config_.burst < 1 || config_.burst > soc::Mailbox::kBatchSlots) {
    throw std::invalid_argument("LogWriter: burst must be in [1, kBatchSlots]");
  }
  if (config_.drain_wait > config_.burst) {
    throw std::invalid_argument(
        "LogWriter: drain_wait must be <= burst (a deeper wait threshold "
        "could never fill one transfer)");
  }
  if (config_.drain_wait > controller_.queue().depth()) {
    throw std::invalid_argument(
        "LogWriter: drain_wait must be <= the CFI queue depth (the queue "
        "can never accumulate that many logs, so only the timeout would "
        "ever fire)");
  }
  if (config_.drain_wait > 1 && config_.drain_timeout == 0) {
    throw std::invalid_argument(
        "LogWriter: the hysteresis policy needs a nonzero drain_timeout "
        "(logs must not wait forever on a quiet program)");
  }
  if (config_.drain_timeout > 100'000) {
    throw std::invalid_argument(
        "LogWriter: drain_timeout above 100000 cycles would dominate the "
        "post-program drain guard");
  }
  if (config_.mac_batches) {
    mac_key_.emplace(
        soc::derive_slot_key(config.device_secret, config.mac_key_sel));
  }
  // One reservation for the lifetime of the writer: begin_batch only clears.
  batch_.reserve(config_.burst);
  writes_.reserve(std::size_t{config_.burst} * CommitLog::kBeats + 1 +
                  soc::Mailbox::kMacRegs);
  if (config_.mac_batches) {
    packed_.reserve(std::size_t{config_.burst} * CommitLog::kBeats * 8);
  }
}

void LogWriter::begin_batch(Cycle now, std::size_t count) {
  writes_.clear();
  write_index_ = 0;
  const soc::Addr base = soc::kCfiMailbox.base;
  if (config_.burst == 1) {
    // Paper layout: the single log's beats land in the legacy data registers.
    const auto beats = batch_[0].pack();
    for (unsigned beat = 0; beat < CommitLog::kBeats; ++beat) {
      writes_.push_back(
          {base + soc::Mailbox::kDataOffset + 8 * beat, beats[beat]});
    }
    busy_until_ = now + 1;  // Pop latency.
    return;
  }
  packed_.clear();
  for (std::size_t slot = 0; slot < count; ++slot) {
    const auto beats = batch_[slot].pack();
    for (unsigned beat = 0; beat < CommitLog::kBeats; ++beat) {
      writes_.push_back(
          {base + soc::Mailbox::slot_offset(static_cast<unsigned>(slot)) +
               8 * beat,
           beats[beat]});
      if (config_.mac_batches) {
        for (unsigned byte = 0; byte < 8; ++byte) {
          packed_.push_back(
              static_cast<std::uint8_t>(beats[beat] >> (8 * byte)));
        }
      }
    }
  }
  writes_.push_back({base + soc::Mailbox::kBatchCountOffset,
                     static_cast<std::uint64_t>(count)});
  if (config_.mac_batches) {
    const crypto::Digest digest = mac_key_->mac(packed_);
    for (unsigned index = 0; index < soc::Mailbox::kMacRegs; ++index) {
      writes_.push_back(
          {base + soc::Mailbox::kBatchMacOffset + 8 * index,
           mac_reg(digest, index)});
    }
  }
  // One pop per drained log: the queue SRAM still has a single read port.
  busy_until_ = now + static_cast<Cycle>(count);
}

void LogWriter::tick(Cycle now) {
  if (now < busy_until_ || state_ == State::kFault) {
    if (state_ == State::kWaitCompletion) {
      ++wait_cycles_;
    }
    return;
  }

  switch (state_) {
    case State::kIdle: {
      const std::size_t queued = controller_.queue().size();
      if (queued == 0) {
        pending_since_.reset();
        return;
      }
      if (config_.drain_wait > 1 && queued < config_.drain_wait) {
        // Hysteresis: hold the drain for a fuller burst, but never past the
        // timeout (counted from the first cycle this idle FSM saw the
        // currently-pending logs).
        if (!pending_since_.has_value()) {
          pending_since_ = now;
        }
        if (now - *pending_since_ < config_.drain_timeout) {
          return;
        }
      }
      pending_since_.reset();
      batch_.resize(config_.burst);
      const std::size_t count = controller_.drain(batch_);
      if (count == 0) {
        return;
      }
      batch_.resize(count);
      if (on_log_) {
        for (const CommitLog& log : batch_) {
          on_log_(log);
        }
      }
      begin_batch(now, count);
      state_ = State::kWriteBeats;
      break;
    }
    case State::kWriteBeats: {
      const PendingWrite& write = writes_[write_index_];
      const soc::BusResponse response = axi_.write(write.addr, 8, write.value);
      busy_until_ = now + response.latency;
      if (++write_index_ == writes_.size()) {
        state_ = State::kRingDoorbell;
      }
      break;
    }
    case State::kRingDoorbell: {
      const soc::BusResponse response =
          axi_.write(soc::kCfiMailbox.base + soc::Mailbox::kDoorbellOffset, 8, 1);
      busy_until_ = now + response.latency;
      logs_sent_ += batch_.size();
      ++batches_sent_;
      state_ = State::kWaitCompletion;
      break;
    }
    case State::kWaitCompletion: {
      // The completion register is wired straight to the commit stage
      // (Sec. IV-A): no bus transaction needed to observe it.
      if (!mailbox_.completion_pending()) {
        ++wait_cycles_;
        return;
      }
      state_ = State::kReadResult;
      break;
    }
    case State::kReadResult: {
      const soc::BusResponse response =
          axi_.read(soc::kCfiMailbox.base + soc::Mailbox::kDataOffset, 8);
      busy_until_ = now + response.latency;
      mailbox_.clear_completion();
      const bool violation = (response.value & 1) != 0;
      if (violation) {
        ++violations_;
        state_ = State::kFault;
        if (on_fault_) {
          // Burst verdicts carry the violating slot index in bits [63:1].
          std::size_t index = static_cast<std::size_t>(response.value >> 1);
          if (index >= batch_.size()) {
            index = 0;
          }
          on_fault_(batch_[index]);
        }
      } else {
        state_ = State::kIdle;
      }
      break;
    }
    case State::kFault:
      break;
  }
}

}  // namespace titan::cfi

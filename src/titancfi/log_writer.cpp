#include "titancfi/log_writer.hpp"

#include <array>
#include <stdexcept>

#include "soc/hmac_mmio.hpp"

namespace titan::cfi {

namespace {

/// Mailbox MAC register packing: each 64-bit register holds two digest words
/// in the byte order the HMAC accelerator's DIGESTn reads present them
/// (big-endian within the 32-bit word), so the firmware can compare the
/// accelerator output against 32-bit mailbox reads with no byte shuffling.
std::uint64_t mac_reg(const crypto::Digest& digest, unsigned index) {
  const auto word = [&digest](unsigned w) -> std::uint64_t {
    return (std::uint64_t{digest[4 * w]} << 24) |
           (std::uint64_t{digest[4 * w + 1]} << 16) |
           (std::uint64_t{digest[4 * w + 2]} << 8) |
           std::uint64_t{digest[4 * w + 3]};
  };
  return word(2 * index) | (word(2 * index + 1) << 32);
}

}  // namespace

LogWriter::LogWriter(QueueController& controller, soc::Crossbar& axi,
                     soc::Mailbox& mailbox, FaultHook on_fault,
                     LogWriterConfig config)
    : controller_(controller),
      axi_(axi),
      mailbox_(mailbox),
      on_fault_(std::move(on_fault)),
      config_(config) {
  if (config_.burst < 1 || config_.burst > soc::Mailbox::kBatchSlots) {
    throw std::invalid_argument("LogWriter: burst must be in [1, kBatchSlots]");
  }
  if (config_.drain_wait > config_.burst) {
    throw std::invalid_argument(
        "LogWriter: drain_wait must be <= burst (a deeper wait threshold "
        "could never fill one transfer)");
  }
  if (config_.drain_wait > controller_.queue().depth()) {
    throw std::invalid_argument(
        "LogWriter: drain_wait must be <= the CFI queue depth (the queue "
        "can never accumulate that many logs, so only the timeout would "
        "ever fire)");
  }
  if (config_.drain_wait > 1 && config_.drain_timeout == 0) {
    throw std::invalid_argument(
        "LogWriter: the hysteresis policy needs a nonzero drain_timeout "
        "(logs must not wait forever on a quiet program)");
  }
  if (config_.drain_timeout > 100'000) {
    throw std::invalid_argument(
        "LogWriter: drain_timeout above 100000 cycles would dominate the "
        "post-program drain guard");
  }
  if (config_.doorbell_timeout > 0 && config_.burst < 2) {
    throw std::invalid_argument(
        "LogWriter: the doorbell watchdog requires burst > 1 (the retry "
        "protocol needs the idempotent BATCH_COUNT handshake the single-log "
        "register file lacks)");
  }
  if (config_.doorbell_timeout > 100'000) {
    throw std::invalid_argument(
        "LogWriter: doorbell_timeout above 100000 cycles would dominate the "
        "post-program drain guard");
  }
  if (config_.doorbell_timeout > 0 && (config_.doorbell_max_retries < 1 ||
                                       config_.doorbell_max_retries > 8)) {
    throw std::invalid_argument(
        "LogWriter: doorbell_max_retries must be in [1, 8] (backoff doubles "
        "the window each retry; more than 8 doublings overflows any useful "
        "timeout)");
  }
  if (config_.mac_rerequest && !config_.mac_batches) {
    throw std::invalid_argument(
        "LogWriter: mac_rerequest without mac_batches — there is no MAC "
        "whose failure could be re-requested");
  }
  if (config_.mac_rerequest &&
      (config_.mac_max_retries < 1 || config_.mac_max_retries > 8)) {
    throw std::invalid_argument(
        "LogWriter: mac_max_retries must be in [1, 8]");
  }
  if (config_.mac_batches) {
    mac_key_.emplace(
        soc::derive_slot_key(config.device_secret, config.mac_key_sel));
  }
  // One reservation for the lifetime of the writer: begin_batch only clears.
  batch_.reserve(config_.burst);
  writes_.reserve(std::size_t{config_.burst} * CommitLog::kBeats + 1 +
                  soc::Mailbox::kMacRegs);
  if (config_.mac_batches) {
    packed_.reserve(std::size_t{config_.burst} * CommitLog::kBeats * 8);
  }
}

void LogWriter::begin_batch(Cycle now, std::size_t count) {
  writes_.clear();
  write_index_ = 0;
  const soc::Addr base = soc::kCfiMailbox.base;
  if (config_.burst == 1) {
    // Paper layout: the single log's beats land in the legacy data registers.
    const auto beats = batch_[0].pack();
    for (unsigned beat = 0; beat < CommitLog::kBeats; ++beat) {
      writes_.push_back(
          {base + soc::Mailbox::kDataOffset + 8 * beat, beats[beat]});
    }
    busy_until_ = now + 1;  // Pop latency.
    return;
  }
  packed_.clear();
  for (std::size_t slot = 0; slot < count; ++slot) {
    const auto beats = batch_[slot].pack();
    for (unsigned beat = 0; beat < CommitLog::kBeats; ++beat) {
      writes_.push_back(
          {base + soc::Mailbox::slot_offset(static_cast<unsigned>(slot)) +
               8 * beat,
           beats[beat]});
      if (config_.mac_batches) {
        for (unsigned byte = 0; byte < 8; ++byte) {
          packed_.push_back(
              static_cast<std::uint8_t>(beats[beat] >> (8 * byte)));
        }
      }
    }
  }
  writes_.push_back({base + soc::Mailbox::kBatchCountOffset,
                     static_cast<std::uint64_t>(count)});
  if (config_.mac_batches) {
    const crypto::Digest digest = mac_key_->mac(packed_);
    std::array<std::uint64_t, soc::Mailbox::kMacRegs> mac_words{};
    for (unsigned index = 0; index < soc::Mailbox::kMacRegs; ++index) {
      mac_words[index] = mac_reg(digest, index);
    }
    // Fault seam: the nth MAC'd transfer (retransmissions included) may have
    // one bit of the 256-bit MAC flipped in transit; the param picks the bit.
    if (injector_ != nullptr) {
      if (const auto bit =
              injector_->fire(sim::FaultSite::kMacCorrupt, now)) {
        const unsigned index = static_cast<unsigned>(*bit % 256);
        mac_words[index / 64] ^= std::uint64_t{1} << (index % 64);
        mac_corrupt_in_flight_ = true;
      }
    }
    for (unsigned index = 0; index < soc::Mailbox::kMacRegs; ++index) {
      writes_.push_back(
          {base + soc::Mailbox::kBatchMacOffset + 8 * index,
           mac_words[index]});
    }
  }
  // One pop per drained log: the queue SRAM still has a single read port.
  busy_until_ = now + static_cast<Cycle>(count);
}

void LogWriter::ring_doorbell_write(Cycle now) {
  const soc::BusResponse response =
      axi_.write(soc::kCfiMailbox.base + soc::Mailbox::kDoorbellOffset, 8, 1);
  busy_until_ = now + response.latency;
}

void LogWriter::enter_wait(Cycle now) {
  wait_started_ = now;
  retry_window_ = config_.doorbell_timeout;
  retries_this_wait_ = 0;
}

void LogWriter::save_state(sim::SnapshotWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(state_));
  writer.u64(batch_.size());
  for (const CommitLog& log : batch_) {
    for (const std::uint64_t beat : log.pack()) {
      writer.u64(beat);
    }
  }
  writer.u64(writes_.size());
  for (const PendingWrite& write : writes_) {
    writer.u64(write.addr);
    writer.u64(write.value);
  }
  writer.u64(write_index_);
  writer.u64(busy_until_);
  writer.boolean(pending_since_.has_value());
  writer.u64(pending_since_.value_or(0));
  writer.u64(logs_sent_);
  writer.u64(batches_sent_);
  writer.u64(violations_);
  writer.u64(wait_cycles_);
  writer.u64(wait_started_);
  writer.u64(retry_window_);
  writer.u32(retries_this_wait_);
  writer.boolean(resend_);
  writer.u32(mac_retries_this_batch_);
  writer.boolean(mac_corrupt_in_flight_);
  writer.boolean(dup_in_flight_);
  writer.u64(doorbell_retries_);
  writer.u64(mac_retries_);
  writer.u64(spurious_completions_);
  writer.u64(degraded_cycles_);
}

void LogWriter::load_state(sim::SnapshotReader& reader) {
  const std::uint8_t state = reader.u8();
  if (state > static_cast<std::uint8_t>(State::kFault)) {
    throw sim::SnapshotError("log writer: bad FSM state");
  }
  state_ = static_cast<State>(state);
  batch_.clear();
  const std::uint64_t batch_count = reader.u64();
  for (std::uint64_t i = 0; i < batch_count; ++i) {
    std::array<std::uint64_t, CommitLog::kBeats> beats{};
    for (std::uint64_t& beat : beats) {
      beat = reader.u64();
    }
    batch_.push_back(CommitLog::unpack(beats));
  }
  writes_.clear();
  const std::uint64_t write_count = reader.u64();
  for (std::uint64_t i = 0; i < write_count; ++i) {
    const soc::Addr addr = reader.u64();
    const std::uint64_t value = reader.u64();
    writes_.push_back({addr, value});
  }
  write_index_ = static_cast<std::size_t>(reader.u64());
  busy_until_ = reader.u64();
  const bool has_pending_since = reader.boolean();
  const Cycle pending_since = reader.u64();
  pending_since_ = has_pending_since ? std::optional<Cycle>(pending_since)
                                     : std::nullopt;
  logs_sent_ = reader.u64();
  batches_sent_ = reader.u64();
  violations_ = reader.u64();
  wait_cycles_ = reader.u64();
  wait_started_ = reader.u64();
  retry_window_ = reader.u64();
  retries_this_wait_ = reader.u32();
  resend_ = reader.boolean();
  mac_retries_this_batch_ = reader.u32();
  mac_corrupt_in_flight_ = reader.boolean();
  dup_in_flight_ = reader.boolean();
  doorbell_retries_ = reader.u64();
  mac_retries_ = reader.u64();
  spurious_completions_ = reader.u64();
  degraded_cycles_ = reader.u64();
}

void LogWriter::tick(Cycle now) {
  if (now < busy_until_ || state_ == State::kFault) {
    if (state_ == State::kWaitCompletion) {
      ++wait_cycles_;
    }
    return;
  }

  switch (state_) {
    case State::kIdle: {
      if (mailbox_.completion_pending()) {
        // A late answer to a doorbell the watchdog already retried: the
        // transfer it acknowledges was re-run, so the signal is consumed
        // with no action (the completion wire is commit-stage-local, no bus
        // transaction involved).
        mailbox_.clear_completion();
        ++spurious_completions_;
      }
      const std::size_t queued = controller_.queue().size();
      if (queued == 0) {
        pending_since_.reset();
        return;
      }
      if (config_.drain_wait > 1 && queued < config_.drain_wait) {
        // Hysteresis: hold the drain for a fuller burst, but never past the
        // timeout (counted from the first cycle this idle FSM saw the
        // currently-pending logs).
        if (!pending_since_.has_value()) {
          pending_since_ = now;
        }
        if (now - *pending_since_ < config_.drain_timeout) {
          return;
        }
      }
      pending_since_.reset();
      batch_.resize(config_.burst);
      const std::size_t count = controller_.drain(batch_);
      if (count == 0) {
        return;
      }
      batch_.resize(count);
      if (on_log_) {
        for (const CommitLog& log : batch_) {
          on_log_(log);
        }
      }
      resend_ = false;
      mac_retries_this_batch_ = 0;
      begin_batch(now, count);
      state_ = State::kWriteBeats;
      break;
    }
    case State::kWriteBeats: {
      const PendingWrite& write = writes_[write_index_];
      const soc::BusResponse response = axi_.write(write.addr, 8, write.value);
      busy_until_ = now + response.latency;
      if (++write_index_ == writes_.size()) {
        state_ = State::kRingDoorbell;
      }
      break;
    }
    case State::kRingDoorbell: {
      ring_doorbell_write(now);
      // Fault seam: the nth ring may be delivered twice (a glitched pulse).
      // Both writes land before the RoT can step, so the PLIC level
      // coalesces them; the duplicate is benign by construction, which is
      // exactly what this site demonstrates.
      if (injector_ != nullptr &&
          injector_->fire(sim::FaultSite::kDoorbellDuplicate, now)) {
        const soc::BusResponse dup = axi_.write(
            soc::kCfiMailbox.base + soc::Mailbox::kDoorbellOffset, 8, 1);
        busy_until_ += dup.latency;
        dup_in_flight_ = true;
      }
      if (!resend_) {
        logs_sent_ += batch_.size();
      }
      ++batches_sent_;
      enter_wait(now);
      state_ = State::kWaitCompletion;
      break;
    }
    case State::kWaitCompletion: {
      // The completion register is wired straight to the commit stage
      // (Sec. IV-A): no bus transaction needed to observe it.
      if (!mailbox_.completion_pending()) {
        ++wait_cycles_;
        if (config_.doorbell_timeout > 0 &&
            now - wait_started_ >= retry_window_) {
          if (retries_this_wait_ >= config_.doorbell_max_retries) {
            // Watchdog exhausted: the RoT is unreachable.  Fail closed —
            // halting beats silently running without enforcement.
            state_ = State::kFault;
            if (on_fault_) {
              on_fault_(batch_[0]);
            }
            return;
          }
          degraded_cycles_ += now - wait_started_;
          ring_doorbell_write(now);
          ++doorbell_retries_;
          ++retries_this_wait_;
          if (injector_ != nullptr) {
            // If a drop was injected, this re-ring is its recovery.
            injector_->note_detected(sim::FaultSite::kDoorbellDrop, now);
          }
          wait_started_ = now;
          retry_window_ *= 2;  // Exponential backoff.
        }
        return;
      }
      state_ = State::kReadResult;
      break;
    }
    case State::kReadResult: {
      const soc::BusResponse response =
          axi_.read(soc::kCfiMailbox.base + soc::Mailbox::kDataOffset, 8);
      busy_until_ = now + response.latency;
      mailbox_.clear_completion();
      if (injector_ != nullptr) {
        // A completed verdict is the observation point for latency-only
        // faults: a stalled RoT answered late, a duplicated doorbell was
        // absorbed.  Both calls are no-ops when nothing was injected.
        injector_->note_detected(sim::FaultSite::kRotStall, now);
        if (dup_in_flight_) {
          injector_->note_detected(sim::FaultSite::kDoorbellDuplicate, now);
          dup_in_flight_ = false;
        }
      }
      const bool violation = (response.value & 1) != 0;
      if (!violation && response.value == kVerdictMacRerequest &&
          config_.mac_rerequest) {
        // The RoT saw a MAC mismatch and asks for a retransmission: the
        // batch is still in hand, so rebuild the transfer (fresh MAC) and
        // resend.  Exhausting the retry budget is a fail-closed fault.
        if (injector_ != nullptr && mac_corrupt_in_flight_) {
          injector_->note_detected(sim::FaultSite::kMacCorrupt, now);
          mac_corrupt_in_flight_ = false;
        }
        if (mac_retries_this_batch_ >= config_.mac_max_retries) {
          state_ = State::kFault;
          if (on_fault_) {
            on_fault_(batch_[0]);
          }
          return;
        }
        ++mac_retries_;
        ++mac_retries_this_batch_;
        resend_ = true;
        begin_batch(now, batch_.size());
        state_ = State::kWriteBeats;
        break;
      }
      if (violation) {
        if (injector_ != nullptr && mac_corrupt_in_flight_) {
          // Without re-request the firmware reports corruption as tamper:
          // the violation verdict is the detection.
          injector_->note_detected(sim::FaultSite::kMacCorrupt, now);
          mac_corrupt_in_flight_ = false;
        }
        ++violations_;
        state_ = State::kFault;
        // Burst verdicts carry the violating slot index in bits [63:1].
        std::size_t index = static_cast<std::size_t>(response.value >> 1);
        if (index >= batch_.size()) {
          index = 0;
        }
        if (tracker_ != nullptr) {
          // The firmware checked (and passed) every slot before the
          // violating one; anything after it never got a verdict.
          for (std::size_t slot = 0; slot < index; ++slot) {
            tracker_->note_cleared(batch_[slot], now);
          }
          tracker_->note_flagged(batch_[index], now);
        }
        if (on_fault_) {
          on_fault_(batch_[index]);
        }
      } else {
        if (tracker_ != nullptr) {
          for (const CommitLog& log : batch_) {
            tracker_->note_cleared(log, now);
          }
        }
        resend_ = false;
        mac_retries_this_batch_ = 0;
        state_ = State::kIdle;
      }
      break;
    }
    case State::kFault:
      break;
  }
}

}  // namespace titan::cfi

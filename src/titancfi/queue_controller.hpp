// CFI Queue + Queue Controller (paper Sec. IV-B2).
//
// "The CFI Queue is a FIFO which stores the commit logs extracted by the CFI
//  Filters. The Queue Controller controls the CFI Queue push signal and,
//  occasionally, it inhibits the CVA6 commit stage ... The Queue Control[ler]
//  inhibits the commit stage if the CFI Queue is full, or if more than one
//  commit port retires a control-flow instruction [in the same cycle]."
#pragma once

#include <cstdint>
#include <span>

#include "cva6/scoreboard.hpp"
#include "sim/fifo.hpp"
#include "titancfi/commit_log.hpp"
#include "titancfi/filter.hpp"

namespace titan::cfi {

using CfiQueue = sim::Fifo<CommitLog>;

class QueueController {
 public:
  explicit QueueController(std::size_t queue_depth)
      : queue_(queue_depth) {}

  /// Evaluate one commit cycle.  `candidates` are the scoreboard entries the
  /// core could retire this cycle, in program order (one per commit port).
  /// Control-flow entries are filtered and pushed into the CFI Queue; the
  /// returned count is how many leading entries may actually retire.
  ///
  /// Invariants enforced (and checked by tests):
  ///  * at most one commit log is pushed per cycle (single queue write port);
  ///  * no entry retires past a CF entry that could not be pushed;
  ///  * logs enter the queue in program order.
  unsigned evaluate(std::span<const cva6::ScoreboardEntry> candidates) {
    unsigned allowed = 0;
    bool pushed_this_cycle = false;
    for (const cva6::ScoreboardEntry& entry : candidates) {
      // Port index only matters for attribution; filters are per-port.
      CfiFilter& filter = filters_[allowed % 2];
      const auto log = filter.filter(entry);
      if (!log.has_value()) {
        ++allowed;
        continue;
      }
      if (pushed_this_cycle) {
        ++dual_cf_stalls_;  // Second CF in the same cycle: stall that port.
        break;
      }
      if (queue_.full()) {
        ++full_stalls_;
        break;
      }
      queue_.push(*log);
      pushed_this_cycle = true;
      ++allowed;
    }
    queue_.sample();
    return allowed;
  }

  /// Burst drain for the Log Writer: pop up to out.size() logs, oldest
  /// first, freeing that many commit slots at once.  Returns the count
  /// actually popped.  A drain of 1 is exactly the paper's one-at-a-time
  /// pop; larger bursts feed the batched mailbox transfer.
  std::size_t drain(std::span<CommitLog> out) {
    std::size_t count = 0;
    while (count < out.size()) {
      auto log = queue_.pop();
      if (!log.has_value()) {
        break;
      }
      out[count++] = *log;
    }
    if (count > max_drained_) {
      max_drained_ = count;
    }
    return count;
  }

  /// Largest burst a single drain() call has popped.
  [[nodiscard]] std::size_t max_drained() const { return max_drained_; }

  /// Event-driven fast-forward accounting: the scheduler skipped `cycles`
  /// evaluate() calls during which the host provably retired no CFI-relevant
  /// instruction (so nothing was pushed, nothing stalled, and the occupancy
  /// never changed).  `port0_scans`/`port1_scans` are the entries each
  /// per-port filter would have scanned (even/odd candidate indices, exactly
  /// as evaluate() attributes them).  Replays the exact statistics the
  /// lock-step loop would have accumulated.
  void note_bypassed_cycles(std::uint64_t cycles, std::uint64_t port0_scans,
                            std::uint64_t port1_scans) {
    filters_[0].note_scanned(port0_scans);
    filters_[1].note_scanned(port1_scans);
    queue_.sample_n(cycles);
  }

  /// True when the queue side of the CFI stage can generate no event before
  /// new commit-stage input: nothing queued for the Log Writer to pop.
  [[nodiscard]] bool quiescent() const { return queue_.empty(); }

  [[nodiscard]] CfiQueue& queue() { return queue_; }
  [[nodiscard]] const CfiQueue& queue() const { return queue_; }
  [[nodiscard]] const CfiFilter& filter(unsigned port) const {
    return filters_[port];
  }

  [[nodiscard]] std::uint64_t full_stalls() const { return full_stalls_; }
  [[nodiscard]] std::uint64_t dual_cf_stalls() const { return dual_cf_stalls_; }

 private:
  CfiQueue queue_;
  CfiFilter filters_[2];
  std::uint64_t full_stalls_ = 0;
  std::uint64_t dual_cf_stalls_ = 0;
  std::size_t max_drained_ = 0;
};

}  // namespace titan::cfi

// CFI Queue + Queue Controller (paper Sec. IV-B2).
//
// "The CFI Queue is a FIFO which stores the commit logs extracted by the CFI
//  Filters. The Queue Controller controls the CFI Queue push signal and,
//  occasionally, it inhibits the CVA6 commit stage ... The Queue Control[ler]
//  inhibits the commit stage if the CFI Queue is full, or if more than one
//  commit port retires a control-flow instruction [in the same cycle]."
//
// Overflow policy (this repo, beyond the paper): the paper's behaviour is
// kBackPressure — stall the commit stage until the RoT drains, losing
// nothing.  The two alternatives model what a deployment would pick when
// stalling the host is unacceptable: kFailClosed halts the host (a CFI fault)
// the moment a log would be lost, guaranteeing zero false negatives;
// kFailOpen lets the instruction retire unchecked and counts the dropped
// log — dropped returns are the potential false negatives the resilience
// block reports.  Fault injection (forced overflow bursts, ECC bit flips on
// queue words) hooks in through an optional FaultInjector.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>

#include "cva6/scoreboard.hpp"
#include "sim/fifo.hpp"
#include "soc/ecc.hpp"
#include "titancfi/attack_tracker.hpp"
#include "titancfi/commit_log.hpp"
#include "titancfi/fault_injector.hpp"
#include "titancfi/filter.hpp"

namespace titan::cfi {

using CfiQueue = sim::Fifo<CommitLog>;

/// What to do when a commit log cannot enter the CFI Queue.
enum class OverflowPolicy {
  kBackPressure,  ///< Stall the commit port until space frees (paper; lossless).
  kFailClosed,    ///< Halt the host: availability sacrificed, zero misses.
  kFailOpen,      ///< Drop the log and let the instruction retire unchecked.
};

class QueueController {
 public:
  explicit QueueController(std::size_t queue_depth)
      : queue_(queue_depth) {}

  void set_overflow_policy(OverflowPolicy policy) { overflow_policy_ = policy; }
  /// Fault-injection seam: `now` must outlive the controller and track the
  /// host cycle (engine-invariant, since evaluate() only runs in stepped
  /// windows where both engines agree on the cycle count).
  void set_fault_injector(FaultInjector* injector, const sim::Cycle* now) {
    injector_ = injector;
    now_ = now;
  }
  /// Attack-corpus scoring seam: every log pushed or dropped is reported to
  /// the tracker, which assigns the engine-invariant event ordinal and spots
  /// hijacked edges.  Same `now` contract as the fault seam.
  void set_attack_tracker(AttackTracker* tracker, const sim::Cycle* now) {
    tracker_ = tracker;
    now_ = now;
  }
  /// Invoked with the offending log when kFailClosed must halt the host (or
  /// when an uncorrectable queue-word ECC error occurs under any policy
  /// other than kFailOpen).
  void set_fail_closed_hook(std::function<void(const CommitLog&)> hook) {
    fail_closed_hook_ = std::move(hook);
  }

  /// Evaluate one commit cycle.  `candidates` are the scoreboard entries the
  /// core could retire this cycle, in program order (one per commit port).
  /// Control-flow entries are filtered and pushed into the CFI Queue; the
  /// returned count is how many leading entries may actually retire.
  ///
  /// Invariants enforced (and checked by tests):
  ///  * at most one commit log is pushed per cycle (single queue write port);
  ///  * no entry retires past a CF entry that could not be pushed — except
  ///    under kFailOpen, where the log is dropped and counted;
  ///  * logs enter the queue in program order.
  unsigned evaluate(std::span<const cva6::ScoreboardEntry> candidates) {
    unsigned allowed = 0;
    bool pushed_this_cycle = false;
    for (const cva6::ScoreboardEntry& entry : candidates) {
      // Port index only matters for attribution; filters are per-port.
      CfiFilter& filter = filters_[allowed % 2];
      const auto log = filter.filter(entry);
      if (!log.has_value()) {
        ++allowed;
        continue;
      }
      if (pushed_this_cycle) {
        ++dual_cf_stalls_;  // Second CF in the same cycle: stall that port.
        break;
      }
      // Fault seam: a scheduled overflow burst forces the full signal for
      // the next `param` push attempts.  Ordinals count push attempts (not
      // cycles) so the perturbation is identical on both engines.
      if (injector_ != nullptr) {
        if (const auto width =
                injector_->fire(sim::FaultSite::kQueueOverflow, *now_)) {
          force_full_remaining_ += std::max<std::uint64_t>(*width, 1);
          if (overflow_policy_ != OverflowPolicy::kFailOpen) {
            // Back-pressure/fail-closed observe the burst immediately (the
            // stall/halt is the response); fail-open never notices — that
            // is exactly the false-negative window.
            injector_->note_detected(sim::FaultSite::kQueueOverflow, *now_);
          }
        }
      }
      const bool forced_full = force_full_remaining_ > 0;
      if (forced_full) {
        --force_full_remaining_;
      }
      if (forced_full || queue_.full()) {
        if (overflow_policy_ == OverflowPolicy::kBackPressure) {
          ++full_stalls_;
          if (forced_full) {
            ++overflow_stall_cycles_;
          }
          break;
        }
        if (overflow_policy_ == OverflowPolicy::kFailClosed) {
          ++full_stalls_;
          if (fail_closed_hook_) {
            fail_closed_hook_(*log);
          }
          break;
        }
        drop_log(*log);  // kFailOpen: retire unchecked.
        ++allowed;
        continue;
      }
      if (injector_ != nullptr && !queue_word_survives_ecc(*log)) {
        continue;  // Log consumed by the fault response (dropped or halted).
      }
      queue_.push(*log);
      if (tracker_ != nullptr) {
        tracker_->note_committed(*log, *now_);
      }
      pushed_this_cycle = true;
      ++allowed;
    }
    queue_.sample();
    return allowed;
  }

  /// Burst drain for the Log Writer: pop up to out.size() logs, oldest
  /// first, freeing that many commit slots at once.  Returns the count
  /// actually popped.  A drain of 1 is exactly the paper's one-at-a-time
  /// pop; larger bursts feed the batched mailbox transfer.
  std::size_t drain(std::span<CommitLog> out) {
    std::size_t count = 0;
    while (count < out.size()) {
      auto log = queue_.pop();
      if (!log.has_value()) {
        break;
      }
      out[count++] = *log;
    }
    if (count > max_drained_) {
      max_drained_ = count;
    }
    return count;
  }

  /// Largest burst a single drain() call has popped.
  [[nodiscard]] std::size_t max_drained() const { return max_drained_; }

  /// Event-driven fast-forward accounting: the scheduler skipped `cycles`
  /// evaluate() calls during which the host provably retired no CFI-relevant
  /// instruction (so nothing was pushed, nothing stalled, and the occupancy
  /// never changed).  `port0_scans`/`port1_scans` are the entries each
  /// per-port filter would have scanned (even/odd candidate indices, exactly
  /// as evaluate() attributes them).  Replays the exact statistics the
  /// lock-step loop would have accumulated.
  void note_bypassed_cycles(std::uint64_t cycles, std::uint64_t port0_scans,
                            std::uint64_t port1_scans) {
    filters_[0].note_scanned(port0_scans);
    filters_[1].note_scanned(port1_scans);
    queue_.sample_n(cycles);
  }

  /// True when the queue side of the CFI stage can generate no event before
  /// new commit-stage input: nothing queued for the Log Writer to pop.
  [[nodiscard]] bool quiescent() const { return queue_.empty(); }

  [[nodiscard]] CfiQueue& queue() { return queue_; }
  [[nodiscard]] const CfiQueue& queue() const { return queue_; }
  [[nodiscard]] const CfiFilter& filter(unsigned port) const {
    return filters_[port];
  }

  [[nodiscard]] std::uint64_t full_stalls() const { return full_stalls_; }
  [[nodiscard]] std::uint64_t dual_cf_stalls() const { return dual_cf_stalls_; }
  [[nodiscard]] std::uint64_t dropped_logs() const { return dropped_logs_; }
  [[nodiscard]] std::uint64_t dropped_returns() const {
    return dropped_returns_;
  }
  [[nodiscard]] std::uint64_t overflow_stall_cycles() const {
    return overflow_stall_cycles_;
  }

  /// Checkpoint support: queue contents + per-port filter counters + the
  /// stall/drop counters and any in-flight forced-overflow burst.  Policy,
  /// injector wiring and hooks are config-derived and not serialized.
  void save_state(sim::SnapshotWriter& writer) const {
    queue_.save_state(writer, [](sim::SnapshotWriter& w, const CommitLog& log) {
      for (const std::uint64_t beat : log.pack()) {
        w.u64(beat);
      }
    });
    filters_[0].save_state(writer);
    filters_[1].save_state(writer);
    writer.u64(force_full_remaining_);
    writer.u64(full_stalls_);
    writer.u64(dual_cf_stalls_);
    writer.u64(dropped_logs_);
    writer.u64(dropped_returns_);
    writer.u64(overflow_stall_cycles_);
    writer.u64(max_drained_);
  }
  void load_state(sim::SnapshotReader& reader) {
    queue_.load_state(reader, [](sim::SnapshotReader& r) {
      std::array<std::uint64_t, CommitLog::kBeats> beats{};
      for (std::uint64_t& beat : beats) {
        beat = r.u64();
      }
      return CommitLog::unpack(beats);
    });
    filters_[0].load_state(reader);
    filters_[1].load_state(reader);
    force_full_remaining_ = reader.u64();
    full_stalls_ = reader.u64();
    dual_cf_stalls_ = reader.u64();
    dropped_logs_ = reader.u64();
    dropped_returns_ = reader.u64();
    overflow_stall_cycles_ = reader.u64();
    max_drained_ = static_cast<std::size_t>(reader.u64());
  }

 private:
  void drop_log(const CommitLog& log) {
    ++dropped_logs_;
    if (log.classify() == rv::CfKind::kReturn) {
      ++dropped_returns_;  // A return retired unchecked: potential miss.
    }
    if (tracker_ != nullptr) {
      tracker_->note_dropped(log, *now_);
    }
  }

  /// Fault seam: the nth successfully pushed log may carry an ECC bit flip
  /// on one 32-bit queue word (the queue SRAM is SECDED-protected like the
  /// rest of the OpenTitan memories).  A single-bit flip is corrected
  /// transparently; a double-bit flip is unrecoverable — the word is lost,
  /// so the log is dropped (kFailOpen) or the host halts (otherwise).
  /// Returns true when the (possibly corrected) log should still be pushed.
  bool queue_word_survives_ecc(const CommitLog& log) {
    const auto param = injector_->fire(sim::FaultSite::kMemBitFlip, *now_);
    if (!param) {
      return true;
    }
    const soc::Secded codec(32);
    const auto beats = log.pack();
    const unsigned half =
        static_cast<unsigned>((*param >> 1) % (CommitLog::kBeats * 2));
    const std::uint64_t word =
        (beats[half / 2] >> ((half % 2) * 32)) & 0xFFFF'FFFFULL;
    std::uint64_t codeword = codec.encode(word);
    const unsigned total = codec.codeword_bits();
    const unsigned first = static_cast<unsigned>((*param >> 4) % total);
    codeword ^= std::uint64_t{1} << first;
    if ((*param & 1) != 0) {
      // Double-bit flip: a second, guaranteed-distinct position.
      const unsigned second =
          (first + 1 + static_cast<unsigned>((*param >> 10) % (total - 1))) %
          total;
      codeword ^= std::uint64_t{1} << second;
    }
    const soc::EccResult decoded = codec.decode(codeword);
    // SECDED catches both outcomes; only the response differs.
    injector_->note_detected(sim::FaultSite::kMemBitFlip, *now_);
    if (decoded.status == soc::EccStatus::kCorrected) {
      return true;  // Corrected in place: the pristine log proceeds.
    }
    if (overflow_policy_ == OverflowPolicy::kFailOpen) {
      drop_log(log);
      return false;
    }
    if (fail_closed_hook_) {
      fail_closed_hook_(log);  // Unrecoverable corruption: halt.
    }
    return false;
  }

  CfiQueue queue_;
  CfiFilter filters_[2];
  OverflowPolicy overflow_policy_ = OverflowPolicy::kBackPressure;
  FaultInjector* injector_ = nullptr;
  AttackTracker* tracker_ = nullptr;
  const sim::Cycle* now_ = nullptr;
  std::function<void(const CommitLog&)> fail_closed_hook_;
  std::uint64_t force_full_remaining_ = 0;
  std::uint64_t full_stalls_ = 0;
  std::uint64_t dual_cf_stalls_ = 0;
  std::uint64_t dropped_logs_ = 0;
  std::uint64_t dropped_returns_ = 0;
  std::uint64_t overflow_stall_cycles_ = 0;
  std::size_t max_drained_ = 0;
};

}  // namespace titan::cfi

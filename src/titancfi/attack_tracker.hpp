// Hijack-retirement accounting for the attack corpus.
//
// The generator (attacks::generate) knows the exact PCs of the hijacked
// control-flow instructions; this tracker watches the CFI pipeline's event
// stream and scores what the enforcement stack does with them.  Every commit
// log entering the pipeline gets a global event ordinal (pushes and fail-open
// drops alike — commit order, never cycles, so both co-simulation engines
// agree).  A hijacked edge then meets one of three fates:
//
//  * flagged  — the RoT verdict names it a violation: detection, with a
//               retirement-to-verdict latency in host cycles;
//  * cleared  — the verdict passes it: the armed policy cannot see this edge
//               (e.g. a forward-edge hijack under shadow-stack-only) — a
//               scored false negative;
//  * dropped  — a fail-open overflow let it retire unchecked — also a scored
//               false negative.
//
// Under kFailClosed the host halts *before* the offending instruction
// retires, so a hijacked edge killed that way is neither retired nor a miss.
//
// Mirrors the FaultInjector conventions: hooks fire only in stepped windows
// where both engines agree on the host cycle, and full state save/load makes
// checkpoints/warm starts transparent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "attacks/attack.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"
#include "titancfi/commit_log.hpp"

namespace titan::cfi {

class AttackTracker {
 public:
  /// `hijack_pcs` must be sorted ascending (attacks::AttackImage guarantees
  /// it).
  explicit AttackTracker(std::vector<std::uint64_t> hijack_pcs)
      : edges_(std::move(hijack_pcs)) {}

  /// A commit log was pushed into the CFI Queue (the instruction retires).
  void note_committed(const CommitLog& log, sim::Cycle now) {
    const std::uint64_t ordinal = next_ordinal_++;
    if (!hijacked(log.pc)) {
      return;
    }
    ++stats_.hijacks_retired;
    pending_.push_back({log.pc, now, ordinal});
  }

  /// A commit log was dropped by a fail-open overflow (the instruction
  /// retires unchecked — a definitive miss).
  void note_dropped(const CommitLog& log, sim::Cycle /*now*/) {
    ++next_ordinal_;
    if (!hijacked(log.pc)) {
      return;
    }
    ++stats_.hijacks_retired;
    ++stats_.false_negatives;
  }

  /// The RoT verdict passed this log: a hijacked edge survived enforcement.
  void note_cleared(const CommitLog& log, sim::Cycle /*now*/) {
    if (!hijacked(log.pc)) {
      return;
    }
    take_pending(log.pc);
    ++stats_.false_negatives;
  }

  /// The RoT verdict flagged this log as the violation.
  void note_flagged(const CommitLog& log, sim::Cycle now) {
    if (!hijacked(log.pc)) {
      return;
    }
    const Pending entry = take_pending(log.pc);
    ++stats_.hijacks_flagged;
    if (!stats_.detected) {
      stats_.detected = true;
      stats_.detection_latency = now - entry.committed;
      stats_.first_fault_ordinal = entry.ordinal;
    }
  }

  [[nodiscard]] const attacks::AttackStats& stats() const { return stats_; }

  /// Checkpoint support: the event ordinal, the in-flight hijack entries
  /// (for latency pairing after a warm start), and the accumulated stats.
  /// The edge set is config-derived and not serialized.
  void save_state(sim::SnapshotWriter& writer) const {
    writer.u64(next_ordinal_);
    writer.u64(pending_.size());
    for (const Pending& entry : pending_) {
      writer.u64(entry.pc);
      writer.u64(entry.committed);
      writer.u64(entry.ordinal);
    }
    writer.u64(stats_.hijacks_retired);
    writer.u64(stats_.hijacks_flagged);
    writer.u64(stats_.false_negatives);
    writer.boolean(stats_.detected);
    writer.u64(stats_.detection_latency);
    writer.u64(stats_.first_fault_ordinal);
  }
  void load_state(sim::SnapshotReader& reader) {
    next_ordinal_ = reader.u64();
    pending_.clear();
    const std::uint64_t count = reader.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      Pending entry;
      entry.pc = reader.u64();
      entry.committed = reader.u64();
      entry.ordinal = reader.u64();
      pending_.push_back(entry);
    }
    stats_.hijacks_retired = reader.u64();
    stats_.hijacks_flagged = reader.u64();
    stats_.false_negatives = reader.u64();
    stats_.detected = reader.boolean();
    stats_.detection_latency = reader.u64();
    stats_.first_fault_ordinal = reader.u64();
  }

 private:
  struct Pending {
    std::uint64_t pc = 0;
    sim::Cycle committed = 0;
    std::uint64_t ordinal = 0;
  };

  [[nodiscard]] bool hijacked(std::uint64_t pc) const {
    return std::binary_search(edges_.begin(), edges_.end(), pc);
  }

  /// Pop the oldest in-flight entry for `pc`.  Verdicts arrive in commit
  /// order, so the match is normally the queue front; the scan keeps the
  /// pairing correct even with benign logs interleaved.
  Pending take_pending(std::uint64_t pc) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->pc == pc) {
        const Pending entry = *it;
        pending_.erase(it);
        return entry;
      }
    }
    return Pending{pc, 0, 0};
  }

  std::vector<std::uint64_t> edges_;
  std::uint64_t next_ordinal_ = 0;
  std::deque<Pending> pending_;
  attacks::AttackStats stats_;
};

}  // namespace titan::cfi

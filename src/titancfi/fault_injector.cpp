#include "titancfi/fault_injector.hpp"

namespace titan::cfi {

FaultInjector::FaultInjector(const sim::FaultPlan& plan) : plan_(plan) {}

std::optional<std::uint64_t> FaultInjector::fire(sim::FaultSite site,
                                                 sim::Cycle now) {
  const auto index = static_cast<std::size_t>(site);
  const std::uint64_t ordinal = ordinal_[index]++;
  std::optional<std::uint64_t> param;
  for (const sim::FaultSpec& spec : plan_.faults) {
    if (spec.site == site && spec.nth == ordinal) {
      // Multiple specs on the same ordinal collapse into one injection (the
      // last param wins) — firing twice at one event has no physical analog.
      if (!param) {
        ++stats_.injected[index];
        pending_[index].push_back(now);
      }
      param = spec.param;
    }
  }
  return param;
}

void FaultInjector::note_detected(sim::FaultSite site, sim::Cycle now) {
  const auto index = static_cast<std::size_t>(site);
  if (pending_[index].empty()) {
    return;
  }
  const sim::Cycle injected_at = pending_[index].front();
  pending_[index].pop_front();
  ++stats_.detected[index];
  const std::uint64_t latency = now >= injected_at ? now - injected_at : 0;
  ++stats_.detection_latency[sim::latency_bucket(latency)];
}

}  // namespace titan::cfi

// OpenTitan RoT subsystem model: Ibex + TL-UL fabric + private SRAM/ROM +
// PLIC + HMAC accelerator + TL2AXI bridge window onto the host domain.
//
// Latency calibration (paper Sec. V-B):
//   * RoT private scratchpad: ~5 cycles per access  (TL hop 3 + SRAM 1 + core 1)
//   * SoC memory through the TL2AXI bridge: ~12 cycles (TL hop 3 + bridge 8 + core 1)
//   * "Optimized" RoT (redesigned low-latency interconnect): scratchpad in a
//     single cycle, SoC memory in ~8 cycles.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ibex/core.hpp"
#include "rv/assembler.hpp"
#include "sim/memory.hpp"
#include "sim/snapshot.hpp"
#include "soc/bus.hpp"
#include "soc/hmac_mmio.hpp"
#include "soc/mailbox.hpp"
#include "soc/memmap.hpp"
#include "soc/plic.hpp"

namespace titan::cfi {

/// RoT interconnect generation (paper Table I sections).
enum class RotFabric {
  kBaseline,   ///< Stock OpenTitan TL-UL fabric (5 / 12 cycle accesses).
  kOptimized,  ///< Low-latency interconnect (1 / 8 cycle accesses).
};

/// RoT-private PLIC (address defined with the rest of the map).
inline constexpr soc::Region kRotPlic = soc::kRotPlic;
/// Doorbell interrupt source id on the RoT PLIC.
inline constexpr unsigned kCfiDoorbellIrq = 1;
/// Device secret the RoT's key slots derive from (model value; the silicon
/// part keeps this in OTP).  Shared with the host-side Log Writer model so
/// batched drains can be MAC'd end to end (soc::derive_slot_key).
inline constexpr std::uint64_t kRotDeviceSecret = 0x0123'4567'89AB'CDEFULL;
/// Key slot used to authenticate batched commit-log transfers.
inline constexpr std::uint32_t kBatchMacKeySlot = 1;

class RotSubsystem {
 public:
  /// `mailbox`: the CFI mailbox (lives in the host domain; reached through
  /// the TL2AXI bridge).  `soc_memory`: host DRAM (spill arena lives there).
  RotSubsystem(const rv::Image& firmware, RotFabric fabric,
               soc::Mailbox& mailbox, sim::Memory& soc_memory);

  /// Step the Ibex core once; returns the step record.
  ibex::IbexStep step();

  /// Run until the Ibex clock reaches `target` (fast-forwards sleep time).
  void run_until(sim::Cycle target);

  /// Fault seam: freeze the Ibex pipeline for `width` cycles starting at the
  /// current Ibex clock (the clock still advances; no instruction executes).
  /// Anchored to the — engine-invariant — Ibex clock at injection time, so
  /// both co-simulation engines observe the identical stall window.
  void inject_stall(sim::Cycle width) {
    stall_until_ = core_->cycle() + width;
    stalled_cycles_ += width;
  }
  [[nodiscard]] std::uint64_t stalled_cycles() const { return stalled_cycles_; }

  [[nodiscard]] ibex::IbexCore& core() { return *core_; }
  [[nodiscard]] soc::Plic& plic() { return plic_; }
  [[nodiscard]] soc::Crossbar& fabric() { return tlul_; }
  [[nodiscard]] const soc::HmacMmio& hmac() const { return *hmac_; }
  [[nodiscard]] sim::Memory& sram() { return sram_; }
  [[nodiscard]] const rv::Image& firmware() const { return firmware_; }

  /// Classify a PC against the firmware section marks ("irq" / "cfi" /
  /// "init" / "poll") — used for Table I attribution.  O(log n) over a
  /// sorted mark table built at construction (this runs once per attributed
  /// Ibex step in the Table I benches).
  [[nodiscard]] std::string section_of(std::uint32_t pc) const;

  /// Checkpoint support.  ROM and SRAM are captured as CoW memory images;
  /// everything else (core, PLIC, fabric counter, HMAC block, stall window)
  /// rides the flat state stream.  The firmware image and section table are
  /// config-derived and not serialized.
  void capture(sim::Snapshot& snapshot, sim::SnapshotWriter& writer) const;
  void restore(const sim::Snapshot& snapshot, std::size_t memory_base,
               sim::SnapshotReader& reader);
  /// Memory images this subsystem appends to a snapshot (ROM, SRAM).
  static constexpr std::size_t kMemoryImages = 2;

 private:
  rv::Image firmware_;
  /// firmware_.marks flattened and sorted by (address, name): the section
  /// owning a PC is the last entry with address <= pc, which reproduces the
  /// seed linear scan's "greatest address, later map entry wins ties" rule.
  std::vector<std::pair<std::uint64_t, std::string>> sections_;
  sim::Memory rom_;
  sim::Memory sram_;
  soc::MemoryTarget rom_target_{rom_};
  soc::MemoryTarget sram_target_{sram_};
  soc::MemoryTarget soc_mem_target_;
  soc::Plic plic_{4};
  soc::Crossbar tlul_;
  std::unique_ptr<soc::HmacMmio> hmac_;
  std::unique_ptr<ibex::IbexCore> core_;
  sim::Cycle stall_until_ = 0;
  std::uint64_t stalled_cycles_ = 0;
};

}  // namespace titan::cfi

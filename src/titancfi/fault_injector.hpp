// Runtime driver of a sim::FaultPlan.
//
// Components that host an injection site call fire(site, now) at each site
// event; the injector advances that site's ordinal and reports whether a
// scheduled fault triggers (returning its param).  Degradation machinery
// calls note_detected(site, now) when it catches the consequence; the
// injector pairs the detection with the oldest undetected injection at that
// site and buckets the latency.  Everything is a pure function of the plan
// and the (engine-invariant) event stream, so the assembled ResilienceStats
// are bit-exact across both co-simulation engines.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "sim/fault.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace titan::cfi {

class FaultInjector {
 public:
  explicit FaultInjector(const sim::FaultPlan& plan);

  /// Advance `site`'s event ordinal; if the plan schedules a fault at this
  /// ordinal, record the injection and return its param.
  std::optional<std::uint64_t> fire(sim::FaultSite site, sim::Cycle now);

  /// Pair a detection with the oldest undetected injection at `site` (no-op
  /// when none is pending, e.g. a retry that was not fault-induced).
  void note_detected(sim::FaultSite site, sim::Cycle now);

  /// Injected/detected counts and the detection-latency histogram.  The
  /// retry/drop/degraded counters live in the components that own them;
  /// SocTop assembles the full block.
  [[nodiscard]] const sim::ResilienceStats& stats() const { return stats_; }

  /// Checkpoint support: per-site event ordinals, the undetected-injection
  /// queues (for latency pairing), and the accumulated stats.  The plan
  /// itself is config-derived and not serialized.
  void save_state(sim::SnapshotWriter& writer) const {
    for (const std::uint64_t ordinal : ordinal_) {
      writer.u64(ordinal);
    }
    for (const auto& queue : pending_) {
      writer.u64(queue.size());
      for (const sim::Cycle cycle : queue) {
        writer.u64(cycle);
      }
    }
    for (const std::uint64_t count : stats_.injected) writer.u64(count);
    for (const std::uint64_t count : stats_.detected) writer.u64(count);
    for (const std::uint64_t count : stats_.detection_latency) writer.u64(count);
    writer.u64(stats_.doorbell_retries);
    writer.u64(stats_.mac_retries);
    writer.u64(stats_.spurious_completions);
    writer.u64(stats_.dropped_logs);
    writer.u64(stats_.false_negatives);
    writer.u64(stats_.degraded_cycles);
  }
  void load_state(sim::SnapshotReader& reader) {
    for (std::uint64_t& ordinal : ordinal_) {
      ordinal = reader.u64();
    }
    for (auto& queue : pending_) {
      queue.clear();
      const std::uint64_t count = reader.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        queue.push_back(reader.u64());
      }
    }
    for (std::uint64_t& count : stats_.injected) count = reader.u64();
    for (std::uint64_t& count : stats_.detected) count = reader.u64();
    for (std::uint64_t& count : stats_.detection_latency) count = reader.u64();
    stats_.doorbell_retries = reader.u64();
    stats_.mac_retries = reader.u64();
    stats_.spurious_completions = reader.u64();
    stats_.dropped_logs = reader.u64();
    stats_.false_negatives = reader.u64();
    stats_.degraded_cycles = reader.u64();
  }

 private:
  sim::FaultPlan plan_;
  std::array<std::uint64_t, sim::kFaultSiteCount> ordinal_{};
  std::array<std::deque<sim::Cycle>, sim::kFaultSiteCount> pending_;
  sim::ResilienceStats stats_;
};

}  // namespace titan::cfi

#include "titancfi/commit_log.hpp"

#include "rv/decode.hpp"

namespace titan::cfi {

std::array<std::uint64_t, CommitLog::kBeats> CommitLog::pack() const {
  return {
      pc,
      static_cast<std::uint64_t>(encoding) | (next << 32),
      (next >> 32) | ((target & 0xFFFFFFFFULL) << 32),
      target >> 32,
  };
}

CommitLog CommitLog::unpack(const std::array<std::uint64_t, kBeats>& beats) {
  CommitLog log;
  log.pc = beats[0];
  log.encoding = static_cast<std::uint32_t>(beats[1]);
  log.next = (beats[1] >> 32) | ((beats[2] & 0xFFFFFFFFULL) << 32);
  log.target = (beats[2] >> 32) | (beats[3] << 32);
  return log;
}

CommitLog CommitLog::from_entry(const cva6::ScoreboardEntry& entry) {
  CommitLog log;
  log.pc = entry.pc;
  log.encoding = entry.inst.expanded;
  log.next = entry.next_pc;
  log.target = entry.target;
  return log;
}

CommitLog CommitLog::from_record(const cva6::CommitRecord& record) {
  CommitLog log;
  log.pc = record.pc;
  log.encoding = record.encoding;
  log.next = record.next_pc;
  log.target = record.target;
  return log;
}

rv::CfKind CommitLog::classify() const {
  return rv::classify(rv::decode(encoding, rv::Xlen::k64));
}

}  // namespace titan::cfi

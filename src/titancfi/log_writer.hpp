// CFI Log Writer FSM (paper Sec. IV-B3), extended with burst drains.
//
// "The CFI Log Writer module implements a Finite State Machine which pops
//  commit logs from [the] CFI Queue, and writes them to the CFI Mailbox
//  through the SoC interconnect. ... the Log Writer retrieves a commit log
//  from the queue, divides it into data chunks of equal size, matching the
//  interconnect data bus, which is 64 bits in our case, and initiates AXI
//  transactions to transmit the commit log to the CFI Mailbox. The final AXI
//  transaction sets the doorbell interrupt register and transitions the FSM
//  into a waiting state ... Once the completion signal is received, the FSM
//  reads the result of the CFI enforcement check from the CFI Mailbox and
//  triggers an exception if any control flow violation is detected."
//
// Burst mode (config.burst > 1): one doorbell carries up to `burst` commit
// logs.  The FSM drains whatever the CFI Queue holds (capped at the burst
// size) into the mailbox batch slots, writes the batch count — and, when
// batch authentication is on, an HMAC over the whole burst computed through
// the precomputed crypto::HmacKey midstates — then rings a single doorbell.
// The RoT answers with one verdict per burst (violating slot index in the
// result register bits [63:1]), so doorbells, IRQ entries, and verdict
// round-trips are amortised over the burst while the per-beat transport
// cost stays identical.  With config.burst == 1 the write sequence, timing,
// and mailbox footprint are exactly the paper's one-at-a-time FSM, which
// keeps Table I/II reproductions honest.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/hmac.hpp"
#include "sim/types.hpp"
#include "soc/bus.hpp"
#include "soc/mailbox.hpp"
#include "soc/memmap.hpp"
#include "titancfi/queue_controller.hpp"

namespace titan::cfi {

using sim::Cycle;

struct LogWriterConfig {
  /// Max commit logs transferred per doorbell.  1 == paper behaviour.
  unsigned burst = 1;
  /// Authenticate each burst with an HMAC over the packed logs (burst mode
  /// only).  The key comes from the shared device-secret slot derivation, so
  /// the RoT firmware can verify it on its HMAC accelerator.
  bool mac_batches = false;
  std::uint64_t device_secret = 0;
  std::uint32_t mac_key_sel = 1;
  /// Hysteresis drain policy (wait-for-k-or-timeout): when > 1, an idle FSM
  /// defers the next drain until the CFI Queue holds `drain_wait` logs or
  /// `drain_timeout` cycles have passed since it first saw a pending log —
  /// fuller bursts, fewer doorbells, bounded added verdict latency.  0 or 1
  /// == drain as soon as anything is queued (paper behaviour).  Must be
  /// <= burst (a deeper threshold could never fill one transfer).
  unsigned drain_wait = 0;
  Cycle drain_timeout = 0;
  /// Doorbell watchdog (degradation machinery, this repo): when > 0, a
  /// transfer that sees no completion within `doorbell_timeout` cycles of
  /// ringing re-rings the doorbell, doubling the window each time
  /// (exponential backoff), up to `doorbell_max_retries` re-rings; an
  /// exhausted budget is a fail-closed CFI fault.  0 == wait forever
  /// (paper behaviour).  Requires burst > 1: the retry protocol leans on the
  /// idempotent BATCH_COUNT handshake (firmware zeroes the count once
  /// serviced, so a re-rung doorbell after a slow-but-successful check hits
  /// the spurious-doorbell path instead of re-running the policy), which the
  /// legacy single-log register file does not have.
  Cycle doorbell_timeout = 0;
  unsigned doorbell_max_retries = 3;
  /// RoT-side MAC-failure re-request: instead of flagging a violation on a
  /// batch-MAC mismatch, the firmware answers the re-request verdict and the
  /// writer retransmits the burst (the queue popped nothing new, so the
  /// stream is unchanged), up to `mac_max_retries` times; exhausting the
  /// budget is a fail-closed fault.  Requires mac_batches.
  bool mac_rerequest = false;
  unsigned mac_max_retries = 3;
};

/// Verdict register values beyond pass (0) and violation (bit 0 + slot index
/// in bits [63:1]): the MAC re-request sentinel has bit 1 set and bit 0
/// clear, so violation decoding is untouched.
inline constexpr std::uint64_t kVerdictMacRerequest = 2;

class LogWriter {
 public:
  enum class State {
    kIdle,
    kWriteBeats,
    kRingDoorbell,
    kWaitCompletion,
    kReadResult,
    kFault,
  };

  using FaultHook = std::function<void(const CommitLog&)>;
  /// Observation hook: every log the writer pops, in pop (program) order.
  /// Used by tests to prove batched and single drains check the identical
  /// authenticated log stream.
  using LogHook = std::function<void(const CommitLog&)>;

  /// `axi`: host-domain fabric the writer masters (paper: standard bus
  /// interconnect, no custom side channel).  `mailbox`: the CFI Mailbox.
  LogWriter(QueueController& controller, soc::Crossbar& axi,
            soc::Mailbox& mailbox, FaultHook on_fault,
            LogWriterConfig config = {});

  /// Advance the FSM to `now` (call once per core cycle).
  void tick(Cycle now);

  void set_log_capture(LogHook hook) { on_log_ = std::move(hook); }
  /// Fault-injection seam (duplicate doorbells, MAC bit corruption) and the
  /// detection side of the doorbell-drop / RoT-stall sites.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  /// Attack-corpus scoring seam: verdict outcomes (pass clears the batch, a
  /// violation flags the named slot and clears the slots before it) feed the
  /// tracker's detection-latency / false-negative accounting.  MAC
  /// re-requests are not verdicts — the batch is retransmitted unreported.
  void set_attack_tracker(AttackTracker* tracker) { tracker_ = tracker; }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const LogWriterConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t logs_sent() const { return logs_sent_; }
  /// Doorbell-delimited transfers (== logs_sent() when burst is 1).
  [[nodiscard]] std::uint64_t batches_sent() const { return batches_sent_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  /// Cycles spent in kWaitCompletion (RoT check latency as seen by HW).
  [[nodiscard]] std::uint64_t wait_cycles() const { return wait_cycles_; }
  /// Watchdog re-rings of the doorbell (exponential backoff).
  [[nodiscard]] std::uint64_t doorbell_retries() const {
    return doorbell_retries_;
  }
  /// Burst retransmissions triggered by the RoT's MAC re-request verdict.
  [[nodiscard]] std::uint64_t mac_retries() const { return mac_retries_; }
  /// Completions consumed while idle (late answers to retried doorbells).
  [[nodiscard]] std::uint64_t spurious_completions() const {
    return spurious_completions_;
  }
  /// Cycles accumulated in timed-out doorbell wait windows.
  [[nodiscard]] std::uint64_t degraded_cycles() const {
    return degraded_cycles_;
  }

  /// Checkpoint support.  The in-flight transfer is serialized verbatim —
  /// batch logs AND the already-materialised beat write list — so a restore
  /// mid-kWriteBeats resumes the exact remaining MMIO writes and never
  /// re-runs begin_batch (which fires the kMacCorrupt injection seam and
  /// would double-advance the fault ordinals).  `packed_` is begin_batch
  /// scratch and `mac_key_` is config-derived; neither is serialized.
  void save_state(sim::SnapshotWriter& writer) const;
  void load_state(sim::SnapshotReader& reader);

 private:
  void begin_batch(Cycle now, std::size_t count);
  void ring_doorbell_write(Cycle now);
  void enter_wait(Cycle now);

  QueueController& controller_;
  soc::Crossbar& axi_;
  soc::Mailbox& mailbox_;
  FaultHook on_fault_;
  LogHook on_log_;
  LogWriterConfig config_;
  /// Engaged only when mac_batches: midstates precomputed once, and any
  /// accidental use without MAC mode is a hard error, not a zero-key MAC.
  std::optional<crypto::HmacKey> mac_key_;

  State state_ = State::kIdle;
  std::vector<CommitLog> batch_;
  /// Pending MMIO writes for the current transfer (beat address/value pairs;
  /// slot beats, then batch count, then MAC words in burst mode).
  struct PendingWrite {
    soc::Addr addr;
    std::uint64_t value;
  };
  /// Reused across batches (reserved once at construction, cleared per
  /// batch): the drain runs once per doorbell on the hot path and must not
  /// churn allocations.
  std::vector<PendingWrite> writes_;
  /// Packed little-endian log bytes for the burst MAC (MAC mode only).
  std::vector<std::uint8_t> packed_;
  std::size_t write_index_ = 0;
  Cycle busy_until_ = 0;
  /// Cycle the idle FSM first observed the currently-pending logs (engaged
  /// only under the hysteresis policy; reset on every drain).
  std::optional<Cycle> pending_since_;
  std::uint64_t logs_sent_ = 0;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t wait_cycles_ = 0;

  // ---- Degradation machinery + fault seam ----------------------------------
  FaultInjector* injector_ = nullptr;
  AttackTracker* tracker_ = nullptr;
  /// Cycle the current doorbell wait window opened, and its (backed-off)
  /// watchdog width; retries already spent on this window.
  Cycle wait_started_ = 0;
  Cycle retry_window_ = 0;
  unsigned retries_this_wait_ = 0;
  /// The current transfer is a MAC-failure retransmission (same logs).
  bool resend_ = false;
  unsigned mac_retries_this_batch_ = 0;
  /// Injected-fault bookkeeping for detection pairing.
  bool mac_corrupt_in_flight_ = false;
  bool dup_in_flight_ = false;
  std::uint64_t doorbell_retries_ = 0;
  std::uint64_t mac_retries_ = 0;
  std::uint64_t spurious_completions_ = 0;
  std::uint64_t degraded_cycles_ = 0;
};

}  // namespace titan::cfi

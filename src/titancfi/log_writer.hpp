// CFI Log Writer FSM (paper Sec. IV-B3).
//
// "The CFI Log Writer module implements a Finite State Machine which pops
//  commit logs from [the] CFI Queue, and writes them to the CFI Mailbox
//  through the SoC interconnect. ... the Log Writer retrieves a commit log
//  from the queue, divides it into data chunks of equal size, matching the
//  interconnect data bus, which is 64 bits in our case, and initiates AXI
//  transactions to transmit the commit log to the CFI Mailbox. The final AXI
//  transaction sets the doorbell interrupt register and transitions the FSM
//  into a waiting state ... Once the completion signal is received, the FSM
//  reads the result of the CFI enforcement check from the CFI Mailbox and
//  triggers an exception if any control flow violation is detected."
#pragma once

#include <cstdint>
#include <functional>

#include "sim/types.hpp"
#include "soc/bus.hpp"
#include "soc/mailbox.hpp"
#include "soc/memmap.hpp"
#include "titancfi/queue_controller.hpp"

namespace titan::cfi {

using sim::Cycle;

class LogWriter {
 public:
  enum class State {
    kIdle,
    kWriteBeats,
    kRingDoorbell,
    kWaitCompletion,
    kReadResult,
    kFault,
  };

  using FaultHook = std::function<void(const CommitLog&)>;

  /// `axi`: host-domain fabric the writer masters (paper: standard bus
  /// interconnect, no custom side channel).  `mailbox`: the CFI Mailbox.
  LogWriter(CfiQueue& queue, soc::Crossbar& axi, soc::Mailbox& mailbox,
            FaultHook on_fault);

  /// Advance the FSM to `now` (call once per core cycle).
  void tick(Cycle now);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t logs_sent() const { return logs_sent_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  /// Cycles spent in kWaitCompletion (RoT check latency as seen by HW).
  [[nodiscard]] std::uint64_t wait_cycles() const { return wait_cycles_; }

 private:
  CfiQueue& queue_;
  soc::Crossbar& axi_;
  soc::Mailbox& mailbox_;
  FaultHook on_fault_;

  State state_ = State::kIdle;
  CommitLog current_{};
  std::array<std::uint64_t, CommitLog::kBeats> beats_{};
  unsigned beat_index_ = 0;
  Cycle busy_until_ = 0;
  std::uint64_t logs_sent_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t wait_cycles_ = 0;
};

}  // namespace titan::cfi

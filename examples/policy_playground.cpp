// Policy playground: TitanCFI's core claim is that the CFI policy is
// *software* — "enabling the possibility of implementing any policy in
// software, without designing and integrating custom hardware monitors"
// (paper Sec. VII).
//
// This example runs one commit-log stream through four different policies:
//   1. the paper's shadow stack (backward edges);
//   2. a jump-table policy (forward edges);
//   3. the composite of both;
//   4. a custom user-defined policy written right here: a call-depth
//      limiter that flags runaway recursion (a DoS guard no fixed-function
//      hardware monitor could retrofit).
#include <iostream>
#include <memory>
#include <vector>

#include "cva6/core.hpp"
#include "firmware/policy.hpp"
#include "workloads/programs.hpp"
#include "api/enforce.hpp"

namespace {

/// A policy the paper never shipped — written in 20 lines, runs in the RoT.
class CallDepthLimiter final : public titan::fw::Policy {
 public:
  explicit CallDepthLimiter(std::size_t max_depth) : max_depth_(max_depth) {}

  titan::fw::Verdict check(const titan::cfi::CommitLog& log) override {
    switch (log.classify()) {
      case titan::rv::CfKind::kCall:
        if (++depth_ > max_depth_) {
          return {false, "call depth limit exceeded"};
        }
        return {};
      case titan::rv::CfKind::kReturn:
        if (depth_ > 0) --depth_;
        return {};
      default:
        return {};
    }
  }

  std::string_view name() const override { return "call-depth-limiter"; }

 private:
  std::size_t max_depth_;
  std::size_t depth_ = 0;
};

/// Collect the CFI-relevant commit logs of a program run.
std::vector<titan::cfi::CommitLog> trace_of(const titan::rv::Image& image) {
  titan::sim::Memory memory;
  memory.load(image.base, image.bytes);
  titan::cva6::Cva6Config config;
  config.reset_pc = image.base;
  titan::cva6::Cva6Core core(config, memory);
  core.run_baseline();
  std::vector<titan::cfi::CommitLog> logs;
  for (const auto& record : core.trace()) {
    if (record.cfi_relevant()) {
      logs.push_back(titan::cfi::CommitLog::from_record(record));
    }
  }
  return logs;
}

void run_policy(titan::fw::Policy& policy,
                const std::vector<titan::cfi::CommitLog>& logs) {
  std::size_t checked = 0;
  for (const auto& log : logs) {
    const auto verdict = policy.check(log);
    ++checked;
    if (!verdict.ok) {
      std::cout << "  [" << policy.name() << "] VIOLATION after " << checked
                << " logs: " << verdict.reason << "\n";
      return;
    }
  }
  std::cout << "  [" << policy.name() << "] clean after " << checked
            << " logs\n";
}

}  // namespace

int main() {
  // Workload: recursive fib — lots of calls/returns, no indirect jumps.
  const auto fib_logs = trace_of(titan::workloads::fib_recursive(10));
  // Workload: indirect dispatch — forward edges through a function table.
  const auto dispatch_image = titan::workloads::indirect_dispatch(8);
  const auto dispatch_logs = trace_of(dispatch_image);

  std::cout << "fib(10): " << fib_logs.size() << " CF logs\n";
  titan::sim::Memory arena1;
  titan::fw::ShadowStackPolicy shadow({}, arena1, {'k'});
  run_policy(shadow, fib_logs);

  CallDepthLimiter shallow_limit(8);   // fib(10) nests deeper than 8
  run_policy(shallow_limit, fib_logs);
  CallDepthLimiter generous_limit(64);
  run_policy(generous_limit, fib_logs);

  std::cout << "\nindirect_dispatch(8): " << dispatch_logs.size()
            << " CF logs\n";
  // Jump-table policy needs the legitimate handler entry points.  Register
  // every observed *initial-run* target — in a real deployment the loader
  // derives these from the binary's symbol table.
  titan::fw::JumpTablePolicy jump_table;
  for (const auto& log : dispatch_logs) {
    if (log.classify() == titan::rv::CfKind::kCall) {
      jump_table.allow_target(log.target);
    }
  }
  run_policy(jump_table, dispatch_logs);

  // A composite: both edges protected at once.
  titan::fw::CompositePolicy composite;
  titan::sim::Memory arena2;
  composite.add(std::make_unique<titan::fw::ShadowStackPolicy>(
      titan::fw::ShadowStackConfig{}, arena2,
      std::vector<std::uint8_t>{'k'}));
  auto jt = std::make_unique<titan::fw::JumpTablePolicy>();
  for (const auto& log : dispatch_logs) {
    if (log.classify() == titan::rv::CfKind::kCall) {
      jt->allow_target(log.target);
    }
  }
  composite.add(std::move(jt));
  run_policy(composite, dispatch_logs);

  // And the forward-edge policy catching a corrupted function pointer:
  // redirect the first indirect (jalr-encoded) call somewhere unregistered.
  std::cout << "\ncorrupted dispatch target:\n";
  auto corrupted = dispatch_logs;
  for (auto& log : corrupted) {
    if ((log.encoding & 0x7F) == 0x67 &&
        log.classify() == titan::rv::CfKind::kCall) {
      log.target += 2;
      break;
    }
  }
  titan::fw::JumpTablePolicy strict;
  for (const auto& log : dispatch_logs) {
    if (log.classify() == titan::rv::CfKind::kCall) {
      strict.allow_target(log.target);
    }
  }
  run_policy(strict, corrupted);
  return 0;
}

// Overhead explorer: interactive-style sweep over the two knobs a TitanCFI
// integrator controls — CFI Queue depth (hardware cost) and RoT check
// latency (firmware/interconnect choice) — for any benchmark from the
// paper's evaluation.
//
//   $ ./examples/overhead_explorer            # default: picojpeg
//   $ ./examples/overhead_explorer slre       # any Table III name
#include <iomanip>
#include <iostream>

#include "area/area_model.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"
#include "api/enforce.hpp"

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "picojpeg";
  const auto* stats = titan::workloads::find_benchmark(name);
  if (stats == nullptr) {
    std::cerr << "unknown benchmark '" << name << "'. Known names:\n";
    for (const auto& row : titan::workloads::benchmark_table()) {
      std::cerr << "  " << row.name << "\n";
    }
    return 1;
  }

  std::cout << "Benchmark " << stats->name << " (" << stats->suite << "): "
            << static_cast<long long>(stats->cycles) << " cycles, "
            << static_cast<long long>(stats->cf_count)
            << " control-flow instructions\n";
  const auto params = titan::workloads::calibrate(*stats);
  std::cout << "Calibrated trace: window fraction " << std::fixed
            << std::setprecision(3) << params.window_fraction
            << ", burst size " << params.cluster << "\n\n";
  const auto cf = titan::workloads::synthesize_cf_cycles(*stats, params);

  std::cout << "Slowdown %, queue depth (rows) x check latency (cols):\n";
  std::cout << "            ";
  const std::uint32_t latencies[] = {20, 73, 112, 180, 267};
  for (const auto latency : latencies) {
    std::cout << std::setw(8) << latency;
  }
  std::cout << "   host-core regs\n";
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::cout << "  depth " << std::setw(3) << depth << " ";
    for (const auto latency : latencies) {
      titan::cfi::OverheadConfig config;
      config.queue_depth = depth;
      config.check_latency = latency;
      config.transport_cycles = 0;
      const double slowdown =
          titan::cfi::simulate_cf_cycles(
              cf, static_cast<titan::sim::Cycle>(stats->cycles), config)
              .slowdown_percent();
      std::cout << std::setw(8) << std::setprecision(1) << slowdown;
    }
    std::cout << std::setw(12)
              << static_cast<long>(titan::area::host_delta(
                                       static_cast<unsigned>(depth))
                                       .total()
                                       .regs)
              << "\n";
  }

  std::cout << "\nReading the grid: latency 267 = IRQ firmware, 112 = "
               "polling, 73 = optimized interconnect (paper Sec. V-B); "
               "the right column is what each queue depth costs in "
               "host-core registers (Table IV model).\n";
  return 0;
}

// Multi-process CFI: the paper's future-work scenario (Sec. V-C) —
// "TitanCFI should be enhanced to [enforce] CFI per thread, to selectively
//  protect only the processes exposed at the boundary of the system".
//
// Three "processes" share the host core:
//   ASID 1 — a network-facing parser   (protected, attacked)
//   ASID 2 — a crypto worker           (protected, clean)
//   ASID 3 — a trusted maintenance task (unprotected by choice)
// Only ONE CFI context stays resident in the demo's RoT scratchpad slice,
// so every parser<->worker switch exercises the authenticated
// suspend/resume path through DRAM.
#include <iostream>

#include "firmware/context_manager.hpp"
#include "rv/encode.hpp"
#include "sim/rng.hpp"
#include "api/enforce.hpp"

namespace {

titan::cfi::CommitLog call_log(std::uint64_t pc) {
  titan::cfi::CommitLog log;
  log.pc = pc;
  log.encoding = titan::rv::enc_j(0x6F, 1, 0x40);
  log.next = pc + 4;
  log.target = pc + 0x40;
  return log;
}

titan::cfi::CommitLog return_log(std::uint64_t target) {
  titan::cfi::CommitLog log;
  log.pc = 0x9000'0000;
  log.encoding = 0x00008067;
  log.next = log.pc + 4;
  log.target = target;
  return log;
}

}  // namespace

int main() {
  titan::sim::Memory dram;
  titan::fw::ContextManagerConfig config;
  config.resident_contexts = 1;
  titan::fw::ContextManager manager(config, dram, {'d', 'e', 'm', 'o'});

  manager.protect(1);
  manager.protect(2);
  // ASID 3 deliberately unprotected: selective protection.

  titan::sim::Rng rng(7);
  std::vector<std::uint64_t> parser_stack;
  std::vector<std::uint64_t> worker_stack;
  int switches = 0;

  std::cout << "Scheduling 600 quanta across 3 processes (1 RoT-resident "
               "context)...\n";
  for (int quantum = 0; quantum < 600; ++quantum) {
    const auto asid =
        static_cast<titan::fw::Asid>(rng.uniform(1, 3));
    if (!manager.switch_to(asid)) {
      std::cout << "context resume FAILED (tampered?)\n";
      return 1;
    }
    ++switches;
    auto* stack = asid == 1   ? &parser_stack
                  : asid == 2 ? &worker_stack
                              : nullptr;
    if (stack == nullptr) {
      // Unprotected maintenance task: its (unchecked) control flow is free.
      (void)manager.check(return_log(0xFFFF'FFFF));
      continue;
    }
    if (stack->empty() || rng.chance(0.6)) {
      const auto log = call_log(0x8000'0000 + rng.uniform(0, 4096) * 4);
      if (!manager.check(log).ok) {
        std::cout << "unexpected violation!\n";
        return 1;
      }
      stack->push_back(log.next);
    } else {
      const std::uint64_t site = stack->back();
      stack->pop_back();
      if (!manager.check(return_log(site)).ok) {
        std::cout << "unexpected violation!\n";
        return 1;
      }
    }
  }
  std::cout << "  clean run: " << switches << " switches, "
            << manager.suspends() << " authenticated suspends, "
            << manager.resumes() << " verified resumes\n"
            << "  parser depth " << manager.depth_of(1) << ", worker depth "
            << manager.depth_of(2) << "\n\n";

  // --- Attack 1: ROP inside the parser. --------------------------------------
  (void)manager.switch_to(1);
  (void)manager.check(call_log(0x8100'0000));
  const auto verdict = manager.check(return_log(0x6666'6660));
  std::cout << "ROP in parser (ASID 1): "
            << (verdict.ok ? "MISSED!" : "caught — " + verdict.reason) << "\n";

  // --- Attack 2: tamper with a suspended context image in DRAM. ---------------
  // Force ASID 2 out of residency, then flip a bit of its DRAM image.
  (void)manager.switch_to(1);
  (void)manager.switch_to(3);  // no-op (unprotected) — keep ASID 1 hot
  titan::fw::ContextManager fresh(config, dram, {'d', 'e', 'm', 'o'});
  fresh.protect(1);
  fresh.protect(2);
  fresh.protect(4);
  (void)fresh.switch_to(2);
  (void)fresh.check(call_log(0x8200'0000));
  (void)fresh.switch_to(1);
  (void)fresh.switch_to(4);  // evicts ASID 2 to DRAM
  const titan::sim::Addr slot = fresh.suspend_slot(2);
  dram.write8(slot + 9, dram.read8(slot + 9) ^ 0x20);
  const bool resumed = fresh.switch_to(2);
  std::cout << "tampered suspended context (ASID 2): "
            << (resumed ? "MISSED!" : "caught — HMAC verification failed")
            << "\n";
  return verdict.ok || resumed ? 1 : 0;
}

// ROP-attack demonstration: the scenario that motivates the paper.
//
// A victim function "suffers a stack-buffer overflow" that overwrites its
// saved return address with an attacker gadget.  Architecturally the program
// is perfectly legal — run without CFI, the attacker's code executes and the
// process exits with the attacker's exit code.  With TitanCFI (the
// registry's "rop_attack" scenario), the RoT's shadow stack detects the
// mismatch at the exact hijacked return and raises the CFI fault before the
// attack can do further damage.
#include <iostream>

#include "api/api.hpp"
#include "cva6/core.hpp"
#include "rv/disasm.hpp"
#include "rv/decode.hpp"
#include "workloads/programs.hpp"
#include "api/enforce.hpp"

int main() {
  const titan::api::Scenario* scenario_ptr =
      titan::api::ScenarioRegistry::global().find("rop_attack");
  if (scenario_ptr == nullptr) {
    std::cerr << "rop_attack: registry has no 'rop_attack' scenario\n";
    return 1;
  }
  const titan::api::Scenario& scenario = *scenario_ptr;
  const titan::rv::Image victim = scenario.workload_image();

  // --- Run 1: no CFI — the hijack succeeds silently. -------------------------
  titan::sim::Memory memory;
  memory.load(victim.base, victim.bytes);
  titan::cva6::Cva6Config host_config;
  host_config.reset_pc = victim.base;
  titan::cva6::Cva6Core bare(host_config, memory);
  bare.run_baseline();
  std::cout << "Without TitanCFI:\n"
            << "  program exits with code " << bare.exit_code()
            << " — the ATTACKER's exit code (66). Control flow was hijacked"
               " and nothing noticed.\n\n";

  // --- Run 2: TitanCFI enabled. ------------------------------------------------
  const titan::api::RunReport result = titan::api::run_scenario(scenario);

  std::cout << "With TitanCFI:\n"
            << "  CFI fault raised:   " << (result.cfi_fault ? "YES" : "no")
            << "\n"
            << "  violations:         " << result.violations << "\n";
  if (result.cfi_fault) {
    const auto inst =
        titan::rv::decode(result.fault_log.encoding, titan::rv::Xlen::k64);
    std::cout << "  faulting instruction: '" << titan::rv::disasm(inst)
              << "' at pc 0x" << std::hex << result.fault_log.pc << "\n"
              << "  hijacked target:      0x" << result.fault_log.target
              << std::dec
              << " (the attacker gadget — the shadow stack expected the"
                 " caller's return site instead)\n";
  }
  std::cout << "\nThe RoT firmware compared the popped shadow-stack entry "
               "with the actual return target extracted from the commit log "
               "and reported the mismatch through the CFI mailbox (paper "
               "Sec. IV-C, V-B).\n";

  return result.cfi_fault ? 0 : 1;
}

// ROP-attack demonstration: the scenario that motivates the paper.
//
// The program is drawn from the attack corpus (src/attacks): a generated
// victim whose stack-buffer overflow overwrites its saved return address
// with a chain of pop-ret gadgets.  Architecturally the program is perfectly
// legal — run without CFI, the attacker's chain executes and the process
// exits with the attacker's exit code.  With TitanCFI (the registry's
// "attacks/rop_L4" scenario), the RoT's shadow stack detects the mismatch at
// the exact hijacked return and raises the CFI fault before the attack can
// do further damage — and the corpus scoring reports exactly how long the
// detection took.
#include <iostream>

#include "api/api.hpp"
#include "cva6/core.hpp"
#include "rv/disasm.hpp"
#include "rv/decode.hpp"
#include "api/enforce.hpp"

int main() {
  const titan::api::Scenario* scenario_ptr =
      titan::api::ScenarioRegistry::global().find("attacks/rop_L4");
  if (scenario_ptr == nullptr) {
    std::cerr << "rop_attack: registry has no 'attacks/rop_L4' scenario\n";
    return 1;
  }
  const titan::api::Scenario& scenario = *scenario_ptr;
  const titan::rv::Image victim = scenario.workload_image();

  // --- Run 1: no CFI — the hijack succeeds silently. -------------------------
  titan::sim::Memory memory;
  memory.load(victim.base, victim.bytes);
  titan::cva6::Cva6Config host_config;
  host_config.reset_pc = victim.base;
  titan::cva6::Cva6Core bare(host_config, memory);
  bare.run_baseline();
  std::cout << "Without TitanCFI:\n"
            << "  program exits with code " << bare.exit_code()
            << " — the ATTACKER's exit code (66). Control flow was hijacked"
               " and nothing noticed.\n\n";

  // --- Run 2: TitanCFI enabled. ------------------------------------------------
  const titan::api::RunReport result = titan::api::run_scenario(scenario);

  std::cout << "With TitanCFI:\n"
            << "  CFI fault raised:   " << (result.cfi_fault ? "YES" : "no")
            << "\n"
            << "  violations:         " << result.violations << "\n";
  if (result.cfi_fault) {
    const auto inst =
        titan::rv::decode(result.fault_log.encoding, titan::rv::Xlen::k64);
    std::cout << "  faulting instruction: '" << titan::rv::disasm(inst)
              << "' at pc 0x" << std::hex << result.fault_log.pc << "\n"
              << "  hijacked target:      0x" << result.fault_log.target
              << std::dec
              << " (the attacker gadget — the shadow stack expected the"
                 " caller's return site instead)\n";
  }
  std::cout << "\nThe RoT firmware compared the popped shadow-stack entry "
               "with the actual return target extracted from the commit log "
               "and reported the mismatch through the CFI mailbox (paper "
               "Sec. IV-C, V-B).\n";

  // --- Corpus scoring ---------------------------------------------------------
  const titan::attacks::AttackStats& attack = result.attack;
  std::cout << "\nAttack-corpus scoring (" << scenario.attack()->serialize()
            << "):\n"
            << "  detected:            " << (attack.detected ? "YES" : "no")
            << "\n"
            << "  detection latency:   " << attack.detection_latency
            << " host cycles from hijacked-return retirement to CFI fault\n"
            << "  first fault ordinal: " << attack.first_fault_ordinal
            << " (position in the committed control-flow log stream)\n"
            << "  false negatives:     " << attack.false_negatives << "\n";

  return result.cfi_fault && attack.detected && attack.false_negatives == 0
             ? 0
             : 1;
}

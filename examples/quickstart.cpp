// Quickstart: assemble a tiny RV64 program, run it on the TitanCFI SoC
// (CVA6 host + CFI stage + OpenTitan RoT running the shadow-stack firmware),
// and inspect what the CFI machinery saw.
//
//   $ ./examples/quickstart
//
// Walks through the three public-API layers most users need:
//   1. rv::Assembler   — build guest code programmatically;
//   2. fw::build_firmware — generate the RoT CFI firmware;
//   3. cfi::SocTop     — co-simulate and collect CFI statistics.
#include <iostream>

#include "firmware/builder.hpp"
#include "rv/assembler.hpp"
#include "titancfi/soc_top.hpp"

int main() {
  using titan::rv::Reg;

  // -- 1. A guest program: main() calls helper() three times. ----------------
  titan::rv::Assembler a(titan::rv::Xlen::k64, 0x8000'0000);
  auto helper = a.new_label();

  a.li(Reg::kSp, 0x8080'0000);
  a.li(Reg::kS0, 3);       // loop counter
  a.li(Reg::kS1, 0);       // accumulator
  auto loop = a.here();
  a.call(helper);          // jal ra, helper  -> checked by the RoT
  a.add(Reg::kS1, Reg::kS1, Reg::kA0);
  a.addi(Reg::kS0, Reg::kS0, -1);
  a.bnez(Reg::kS0, loop);
  a.mv(Reg::kA0, Reg::kS1);
  a.ecall();               // exit, code in a0

  a.bind(helper);
  a.li(Reg::kA0, 14);
  a.ret();                 // jalr x0, 0(ra) -> checked against shadow stack

  const titan::rv::Image program = a.finish();
  std::cout << "Assembled " << program.bytes.size() << " bytes at 0x"
            << std::hex << program.base << std::dec << "\n";

  // -- 2. The RoT firmware (IRQ-driven shadow stack). --------------------------
  titan::fw::FirmwareConfig fw_config;
  fw_config.variant = titan::fw::FwVariant::kIrq;
  fw_config.ss_capacity = 32;
  const titan::rv::Image firmware = titan::fw::build_firmware(fw_config);
  std::cout << "Generated " << firmware.bytes.size()
            << " bytes of RV32 CFI firmware\n";

  // -- 3. Co-simulate. -----------------------------------------------------------
  titan::cfi::SocConfig config;
  config.queue_depth = 8;
  titan::cfi::SocTop soc(config, program, firmware);
  const titan::cfi::SocRunResult result = soc.run();

  std::cout << "\nRun finished:\n"
            << "  exit code          " << result.exit_code << " (expected 42)\n"
            << "  host cycles        " << result.cycles << "\n"
            << "  host instructions  " << result.instructions << "\n"
            << "  CF logs checked    " << result.cf_logs
            << " (3 calls + 3 returns)\n"
            << "  doorbells rung     " << result.doorbells << "\n"
            << "  CFI violations     " << result.violations << "\n"
            << "  queue-full stalls  " << result.queue_full_stalls << "\n";

  return result.exit_code == 42 && result.violations == 0 ? 0 : 1;
}

// Quickstart: assemble a tiny RV64 program, run it on the TitanCFI SoC
// (CVA6 host + CFI stage + OpenTitan RoT running the shadow-stack firmware),
// and inspect what the CFI machinery saw.
//
//   $ ./examples/quickstart
//
// Walks through the three public-API layers most users need:
//   1. rv::Assembler        — build guest code programmatically;
//   2. api::ScenarioBuilder — describe the experiment ONCE (the builder
//      configures the host-side CFI machinery and the RoT firmware from the
//      same values, so the two sides cannot disagree);
//   3. api::run_scenario    — co-simulate and collect the unified RunReport.
#include <iostream>

#include "api/api.hpp"
#include "rv/assembler.hpp"
#include "api/enforce.hpp"

int main() {
  using titan::rv::Reg;

  // -- 1. A guest program: main() calls helper() three times. ----------------
  titan::rv::Assembler a(titan::rv::Xlen::k64, 0x8000'0000);
  auto helper = a.new_label();

  a.li(Reg::kSp, 0x8080'0000);
  a.li(Reg::kS0, 3);       // loop counter
  a.li(Reg::kS1, 0);       // accumulator
  auto loop = a.here();
  a.call(helper);          // jal ra, helper  -> checked by the RoT
  a.add(Reg::kS1, Reg::kS1, Reg::kA0);
  a.addi(Reg::kS0, Reg::kS0, -1);
  a.bnez(Reg::kS0, loop);
  a.mv(Reg::kA0, Reg::kS1);
  a.ecall();               // exit, code in a0

  a.bind(helper);
  a.li(Reg::kA0, 14);
  a.ret();                 // jalr x0, 0(ra) -> checked against shadow stack

  titan::rv::Image program = a.finish();
  std::cout << "Assembled " << program.bytes.size() << " bytes at 0x"
            << std::hex << program.base << std::dec << "\n";

  // -- 2. The scenario: workload + every CFI knob, validated at build(). ------
  const titan::api::Scenario scenario =
      titan::api::ScenarioBuilder()
          .name("quickstart")
          .workload(titan::api::Workload::image("quickstart",
                                                std::move(program)))
          .firmware(titan::api::Firmware::kIrq)  // IRQ-driven shadow stack
          .queue_depth(8)
          .build();
  std::cout << "Scenario: " << scenario.serialize() << "\n";

  // -- 3. Co-simulate. --------------------------------------------------------
  const titan::api::RunReport result = titan::api::run_scenario(scenario);

  std::cout << "\nRun finished:\n"
            << "  exit code          " << result.exit_code << " (expected 42)\n"
            << "  host cycles        " << result.cycles << "\n"
            << "  host instructions  " << result.instructions << "\n"
            << "  CF logs checked    " << result.cf_logs
            << " (3 calls + 3 returns)\n"
            << "  doorbells rung     " << result.doorbells << "\n"
            << "  CFI violations     " << result.violations << "\n"
            << "  queue-full stalls  " << result.queue_full_stalls << "\n";

  return result.exit_code == 42 && result.violations == 0 ? 0 : 1;
}
